// Static verifier for the combined-DFA and service-configuration invariants.
//
// The paper's correctness argument (§5.1) rests on structural properties of
// the compiled artifacts that nothing at runtime re-checks: accepting states
// renumbered densely into {0..f-1}, suffix patterns propagated into every
// match-table row, the per-state middlebox bitmap equal to the OR of its
// match targets, failure links acyclic and depth-decreasing, and the
// compressed (failure-link) representation decoding to the exact same
// transition function as the full table. Optimisation PRs can silently break
// any of these while all example traffic still scans plausibly.
//
// This module proves the properties mechanically:
//
//  - DFA checks run against a DfaSnapshot and an *independent* oracle derived
//    from the pattern set by definition (a state with label w matches
//    pattern p iff p is a suffix of w; delta(w, b) is the longest suffix of
//    w+b that is a prefix of some pattern). The oracle shares no code with
//    src/ac, so a construction bug cannot hide itself.
//  - Engine checks cross-validate the match table, accepting-state bitmaps
//    and chain bitmaps of a compiled dpi::Engine.
//  - PatternDb checks prove the controller's ref-counts equal the sum of
//    per-middlebox registrations visible in its snapshot.
//
// Every violation is reported as a Diagnostic with a stable machine-readable
// `code` (tests assert on codes; tools/dpisvc_check prints them).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dpi/engine.hpp"
#include "dpi/pattern_db.hpp"
#include "verify/dfa_snapshot.hpp"
#include "verify/engine_tables.hpp"

namespace dpisvc::verify {

struct Diagnostic {
  std::string code;     ///< stable id, e.g. "suffix-propagation-missing"
  std::string message;  ///< human-readable detail with state/pattern ids
};

// --- individual DFA checks ---------------------------------------------------

/// Shape sanity: index ranges, table sizes. Codes: "start-out-of-range",
/// "transition-out-of-range", "match-table-size", "accepting-count",
/// "table-shape".
std::vector<Diagnostic> check_structure(const DfaSnapshot& snap);

/// Match rows sorted, deduped, and non-empty for every accepting state.
/// Codes: "match-row-unsorted", "match-row-duplicate",
/// "accepting-empty-output", "pattern-index-out-of-range".
std::vector<Diagnostic> check_match_rows(const DfaSnapshot& snap,
                                         std::size_t num_patterns);

/// Failure links (when materialized): root self-loop, depth-decreasing,
/// acyclic. Codes: "failure-link-root", "failure-link-depth",
/// "failure-link-cycle".
std::vector<Diagnostic> check_failure_links(const DfaSnapshot& snap);

/// Definition-based oracle over the pattern set: state labels, acceptance,
/// suffix-pattern closure, and the full transition function. Codes:
/// "state-unreachable", "label-collision", "label-not-prefix",
/// "state-count", "acceptance-divergence", "suffix-propagation-missing",
/// "match-divergence", "transition-divergence", "depth-divergence".
std::vector<Diagnostic> check_against_patterns(const DfaSnapshot& snap,
                                               const Patterns& patterns);

/// Proves two representations (typically full-table vs compressed) encode
/// the identical automaton. Codes: "representation-shape",
/// "representation-divergence", "representation-match-divergence".
std::vector<Diagnostic> check_equivalence(const DfaSnapshot& full,
                                          const DfaSnapshot& compressed);

// --- batched scan kernel -----------------------------------------------------

/// Proves the batched-kernel layout (ac::HotKernel) encodes exactly the
/// full table restricted to the hot core: the hot<->full id maps are
/// inverse bijections, the hot set is depth-closed, accepting-first
/// renumbering is preserved, and — for every hot state and every one of the
/// 256 input bytes — the class-compressed table entry equals the full
/// transition (which simultaneously proves the byte-equivalence classes
/// sound). Codes: "kernel-unavailable", "kernel-shape", "kernel-id-map",
/// "kernel-depth-closure", "kernel-accepting-order", "kernel-start-cold",
/// "kernel-complete-flag", "kernel-class-range",
/// "kernel-transition-divergence".
std::vector<Diagnostic> check_hot_kernel(const ac::FullAutomaton& full,
                                         const ac::HotKernel& kernel);

/// Differential cross-check of the batched kernel against the scalar
/// oracle. Every flow's packet sequence is scanned packet-by-packet twice
/// (ScanKernel::kScalar vs kBatched, cursors resumed independently) and the
/// flows are additionally advanced in lockstep through the interleaved
/// batch path; every ScanResult is compared field by field — match
/// sections, raw/anchor/regex counters, bytes scanned, and the resumed
/// FlowCursor (DFA state, flow offset, anchor bits, regex window). The
/// per-transition layout proof above makes table divergence impossible;
/// this check covers the walk itself (stride boundaries, interleave
/// scheduling, cold-exit continuation, event ordering). Codes:
/// "kernel-not-active", "kernel-scan-divergence", "kernel-batch-divergence".
std::vector<Diagnostic> cross_check_kernel(
    const dpi::Engine& engine, dpi::ChainId chain,
    const std::vector<std::vector<Bytes>>& flows);

// --- engine / service checks -------------------------------------------------
// EngineTables and extract_tables live in verify/engine_tables.hpp (shared
// with src/analysis and tools/dpisvc_lint), re-exported via the include above.

/// Accepting-state bitmaps equal the OR of their match-target owners, target
/// rows sorted as the scan loop assumes, chain bitmaps consistent with chain
/// members. Codes: "engine-shape", "bitmap-stale", "target-row-unsorted",
/// "target-owner-mismatch", "target-unknown-middlebox", "chain-bitmap-stale".
std::vector<Diagnostic> check_engine_tables(const EngineTables& tables);

/// Convenience: extract_tables + check_engine_tables.
std::vector<Diagnostic> check_engine(const dpi::Engine& engine);

/// Controller ref-counts equal the sum of per-middlebox registrations.
/// Codes: "refcount-mismatch", "distinct-count", "unregistered-reference",
/// "chain-unknown-middlebox".
std::vector<Diagnostic> check_pattern_db(const dpi::PatternDb& db);

// --- aggregates --------------------------------------------------------------

/// All DFA checks (structure, match rows, failure links, oracle).
std::vector<Diagnostic> verify_dfa(const DfaSnapshot& snap,
                                   const Patterns& patterns);

/// Full verification of an engine spec: compiles the engine with `config`,
/// re-derives the distinct-string table (exact patterns plus regex anchors)
/// independently, runs all DFA checks on the engine's actual automaton,
/// builds the *other* automaton representation from the same strings and
/// proves the two equivalent, then runs the engine-level checks.
std::vector<Diagnostic> verify_engine_spec(const dpi::EngineSpec& spec,
                                           const dpi::EngineConfig& config = {});

}  // namespace dpisvc::verify
