#include "workload/adversarial_gen.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/rng.hpp"

namespace dpisvc::workload {

namespace {

/// Signed distance a - b in sequence space (same rule the reassembler uses).
std::int32_t seq_delta(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}

Bytes make_decoy(const Bytes& data, std::uint8_t decoy_byte) {
  Bytes out(data.size(), decoy_byte);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Guarantee every byte differs from the true copy.
    if (data[i] == decoy_byte) out[i] = static_cast<std::uint8_t>(decoy_byte ^ 0x1);
  }
  return out;
}

}  // namespace

AdversarialTrace make_evasion_trace(const net::FiveTuple& flow,
                                    BytesView clean,
                                    const EvasionSpec& spec) {
  AdversarialTrace trace;
  trace.flow = flow;
  trace.initial_seq = spec.initial_seq;
  trace.clean_stream.assign(clean.begin(), clean.end());
  Rng rng(spec.seed);

  // Cut the clean stream into base segments (sequence numbers wrap
  // naturally through uint32 arithmetic).
  const std::size_t seg = std::max<std::size_t>(spec.segment_bytes, 1);
  std::vector<SegmentRecord> base;
  for (std::size_t at = 0; at < clean.size(); at += seg) {
    const std::size_t len = std::min(seg, clean.size() - at);
    base.push_back(SegmentRecord{
        spec.initial_seq + static_cast<std::uint32_t>(at),
        Bytes(clean.begin() + static_cast<std::ptrdiff_t>(at),
              clean.begin() + static_cast<std::ptrdiff_t>(at + len))});
  }

  // Build the delivery order. The segment at initial_seq is always
  // delivered first: FlowReassembler anchors a new stream at the first
  // packet it sees, and the oracle model assumes the same anchor.
  std::vector<SegmentRecord>& out = trace.segments;
  auto maybe_retransmit = [&](std::size_t delivered_prefix) {
    if (delivered_prefix == 0 || !rng.bernoulli(spec.retransmit_rate)) return;
    out.push_back(base[rng.index(delivered_prefix)]);
  };
  if (spec.conflict != ConflictMode::kNone && base.size() >= 2) {
    out.push_back(base[0]);
    std::size_t i = 1;
    while (i < base.size()) {
      if (i + 1 < base.size() && rng.bernoulli(spec.conflict_rate)) {
        // Conflict group over (S_i, S_{i+1}): withhold S_i so both copies
        // of S_{i+1} meet ahead of the frontier, where the overlap policy
        // — not release order — decides the winner.
        const SegmentRecord& truth = base[i + 1];
        SegmentRecord decoy{truth.seq, make_decoy(truth.data, spec.decoy_byte)};
        if (spec.conflict == ConflictMode::kDecoyLater) {
          out.push_back(truth);
          out.push_back(std::move(decoy));
        } else {
          out.push_back(std::move(decoy));
          out.push_back(truth);
        }
        out.push_back(base[i]);
        i += 2;
      } else {
        out.push_back(base[i]);
        ++i;
      }
      maybe_retransmit(i);
    }
  } else {
    out = base;
    if (spec.shuffle && out.size() > 2) {
      // Fisher-Yates over [1, n): element 0 stays the anchor.
      for (std::size_t i = out.size(); i > 2; --i) {
        std::swap(out[i - 1], out[1 + rng.index(i - 1)]);
      }
    }
    if (spec.retransmit_rate > 0) {
      std::vector<SegmentRecord> with_rtx;
      for (std::size_t i = 0; i < out.size(); ++i) {
        with_rtx.push_back(out[i]);
        if (i > 0 && rng.bernoulli(spec.retransmit_rate)) {
          with_rtx.push_back(out[rng.index(i)]);
        }
      }
      out = std::move(with_rtx);
    }
  }

  // Materialize packets, applying IP fragmentation per delivered segment.
  std::uint16_t ip_id = spec.first_ip_id;
  for (const SegmentRecord& s : out) {
    net::Packet packet;
    packet.tuple = flow;
    packet.tcp_seq = s.seq;
    packet.payload = s.data;
    packet.ip_id = ip_id++;
    if (spec.fragment_payload > 0 && s.data.size() > spec.fragment_payload) {
      auto frags = net::fragment_packet(packet, spec.fragment_payload);
      if (spec.fragment_reverse) std::reverse(frags.begin(), frags.end());
      for (auto& f : frags) trace.packets.push_back(std::move(f));
    } else {
      trace.packets.push_back(std::move(packet));
    }
  }
  return trace;
}

NormalizedView normalize_segments(std::uint32_t initial_seq,
                                  const std::vector<SegmentRecord>& delivery,
                                  net::OverlapPolicy policy,
                                  const net::ReassemblyConfig& config) {
  NormalizedView view;
  // Per-byte watermark model. `frontier` is the count of released bytes;
  // `pending` maps stream offsets ahead of the frontier to their resolved
  // byte. Stream offsets are recovered wrap-safely by measuring each
  // segment against the current expected sequence number.
  std::int64_t frontier = 0;
  std::map<std::int64_t, std::uint8_t> pending;
  bool poisoned = false;

  auto conflict = [&](std::uint64_t differing) {
    view.ambiguous = true;
    view.conflicting_bytes += differing;
    if (policy == net::OverlapPolicy::kRejectAmbiguous) {
      poisoned = true;
      pending.clear();
    }
  };

  for (const SegmentRecord& s : delivery) {
    if (poisoned || s.data.empty()) continue;
    const std::uint32_t expected =
        initial_seq + static_cast<std::uint32_t>(frontier);
    const std::int64_t rel = frontier + seq_delta(s.seq, expected);
    const auto len = static_cast<std::int64_t>(s.data.size());

    // Head behind the frontier: released bytes are immutable, but they are
    // conflict-checked against the history window.
    const std::int64_t behind_hi = std::min(frontier, rel + len);
    if (rel < frontier) {
      const std::int64_t window_lo = std::max<std::int64_t>(
          0, frontier - static_cast<std::int64_t>(config.overlap_history));
      std::uint64_t differing = 0;
      for (std::int64_t o = std::max<std::int64_t>(rel, window_lo);
           o < behind_hi; ++o) {
        if (view.bytes[static_cast<std::size_t>(o)] !=
            s.data[static_cast<std::size_t>(o - rel)]) {
          ++differing;
        }
      }
      if (differing > 0) {
        conflict(differing);
        if (poisoned) continue;
      }
    }
    const std::int64_t start = std::max(rel, frontier);
    if (start >= rel + len) continue;  // entirely behind
    if (start - frontier > static_cast<std::int64_t>(config.max_gap)) {
      continue;  // dropped by the gap bound
    }

    // Resolve against pending bytes; store the holes.
    std::uint64_t differing = 0;
    for (std::int64_t o = start; o < rel + len; ++o) {
      const std::uint8_t b = s.data[static_cast<std::size_t>(o - rel)];
      auto it = pending.find(o);
      if (it == pending.end()) {
        pending.emplace(o, b);
        continue;
      }
      if (it->second != b) {
        ++differing;
        if (policy == net::OverlapPolicy::kLastWins) it->second = b;
      }
    }
    if (differing > 0) {
      conflict(differing);
      if (poisoned) continue;
    }

    // Drain the contiguous prefix.
    for (auto it = pending.find(frontier); it != pending.end();
         it = pending.find(frontier)) {
      view.bytes.push_back(it->second);
      pending.erase(it);
      ++frontier;
    }
  }
  return view;
}

namespace {

/// Independent per-datagram defragmentation model mirroring
/// net::IpDefragmenter's semantics (minus capacity/idle eviction, which the
/// generators never trigger).
struct ModelDatagram {
  std::map<std::size_t, std::uint8_t> bytes;
  bool have_last = false;
  std::size_t total_len = 0;
  bool have_header = false;
  std::uint32_t header_seq = 0;
  bool poisoned = false;
};

}  // namespace

NormalizedView normalize_trace(const AdversarialTrace& trace,
                               net::OverlapPolicy policy,
                               const net::ReassemblyConfig& reassembly,
                               const net::DefragConfig& defrag) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t,
                         std::uint16_t>;
  std::map<Key, ModelDatagram> datagrams;
  std::vector<SegmentRecord> delivery;
  std::uint64_t frag_conflicts = 0;
  bool frag_ambiguous = false;

  for (const net::Packet& p : trace.packets) {
    if (!p.is_fragment()) {
      delivery.push_back(SegmentRecord{p.tcp_seq, p.payload});
      continue;
    }
    const Key key{p.tuple.src_ip.value, p.tuple.dst_ip.value,
                  static_cast<std::uint8_t>(p.tuple.proto), p.ip_id};
    ModelDatagram& dg = datagrams[key];
    const std::size_t offset = static_cast<std::size_t>(p.frag_offset) * 8;
    const std::size_t len = p.payload.size();
    const std::size_t extent = dg.bytes.empty() ? 0 : dg.bytes.rbegin()->first + 1;

    bool bad = offset + len > defrag.max_datagram;
    if (p.more_fragments) {
      if (len == 0 || len % 8 != 0) bad = true;
      if (dg.have_last && offset + len > dg.total_len) bad = true;
    } else {
      if (dg.have_last && dg.total_len != offset + len) bad = true;
      if (extent > offset + len) bad = true;
    }
    if (bad || (p.more_fragments && len < defrag.min_fragment)) {
      dg.poisoned = true;
      continue;
    }
    if (dg.poisoned) continue;
    if (offset == 0 && !dg.have_header) {
      dg.have_header = true;
      dg.header_seq = p.tcp_seq;
    }
    if (!p.more_fragments) {
      dg.have_last = true;
      dg.total_len = offset + len;
    }
    std::uint64_t differing = 0;
    for (std::size_t i = 0; i < len; ++i) {
      auto it = dg.bytes.find(offset + i);
      if (it == dg.bytes.end()) {
        dg.bytes.emplace(offset + i, p.payload[i]);
        continue;
      }
      if (it->second != p.payload[i]) {
        ++differing;
        if (policy == net::OverlapPolicy::kLastWins) it->second = p.payload[i];
      }
    }
    if (differing > 0) {
      frag_ambiguous = true;
      frag_conflicts += differing;
      if (policy == net::OverlapPolicy::kRejectAmbiguous) {
        dg.poisoned = true;
        continue;
      }
    }
    if (dg.have_last && dg.have_header && dg.bytes.size() == dg.total_len) {
      Bytes assembled;
      assembled.reserve(dg.total_len);
      for (const auto& [_, b] : dg.bytes) assembled.push_back(b);
      delivery.push_back(SegmentRecord{dg.header_seq, std::move(assembled)});
      datagrams.erase(key);
    }
  }

  NormalizedView view =
      normalize_segments(trace.initial_seq, delivery, policy, reassembly);
  view.ambiguous = view.ambiguous || frag_ambiguous;
  view.conflicting_bytes += frag_conflicts;
  return view;
}

}  // namespace dpisvc::workload
