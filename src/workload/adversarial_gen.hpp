// Adversarial trace generation: NIDS evasion transforms with a reference
// normalization oracle.
//
// The evasion literature (Ptacek/Newsham-style insertion and evasion)
// attacks the gap between the middlebox's reconstruction of a TCP stream
// and the endpoint's. This module produces traces that exercise that gap on
// purpose:
//   - segment-level transforms: small segments, out-of-order delivery,
//     retransmit storms, sequence-number wraparound straddling the payload;
//   - ambiguity transforms: overlapping segments carrying *different* bytes
//     for the same sequence range, ordered so that each OverlapPolicy
//     resolves to a different stream;
//   - IP-level transforms: datagrams split into fragments (optionally
//     delivered in reverse), including tiny fragments the defragmenter is
//     configured to reject.
//
// Every generator is seeded and deterministic. normalize_segments() /
// normalize_trace() are an *independent* model of the policy semantics —
// a per-byte watermark simulation, sharing no code with
// net::StreamReassembler / net::IpDefragmenter — so tests can assert that
// scanning the reassembled stream equals scanning the policy-normalized
// bytes directly, for every policy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/reassembly.hpp"

namespace dpisvc::workload {

/// How conflicting overlaps are injected into the delivery order.
enum class ConflictMode : std::uint8_t {
  kNone = 0,
  /// The true bytes are delivered first (while the preceding segment is
  /// withheld, so both copies meet in the pending buffer): kFirstWins
  /// normalizes to the clean stream, kLastWins sees the decoy bytes, and
  /// kRejectAmbiguous releases only the prefix before the first conflict.
  kDecoyLater = 1,
  /// The decoy is delivered first: kLastWins normalizes to the clean
  /// stream and kFirstWins sees the decoy bytes.
  kDecoyFirst = 2,
};

struct EvasionSpec {
  std::uint64_t seed = 1;
  /// Sequence number of the stream's first byte; place it near 0xFFFFFFFF
  /// to make the stream straddle the 32-bit wrap.
  std::uint32_t initial_seq = 0;
  /// Bytes per TCP segment (patterns longer than this are forced to span
  /// segments).
  std::size_t segment_bytes = 8;
  /// Shuffle the delivery order (the first-delivered segment stays the one
  /// at initial_seq, which anchors the reassembler). Only applied when
  /// `conflict` is kNone — the conflict constructions encode their own
  /// delivery order.
  bool shuffle = false;
  /// After each delivery, probability of re-delivering a copy of a random
  /// earlier (true) segment — a retransmit storm of identical bytes.
  double retransmit_rate = 0.0;
  ConflictMode conflict = ConflictMode::kNone;
  /// Probability that a segment pair becomes a conflict group.
  double conflict_rate = 0.0;
  /// Byte the decoy copies are filled with (bytes equal to it are flipped
  /// so a decoy always differs from the true segment).
  std::uint8_t decoy_byte = '#';
  /// When non-zero, every delivered segment's packet is split into IP
  /// fragments of at most this many payload bytes (multiples of 8 for all
  /// but the last). 8-byte fragments against the default DefragConfig
  /// (min_fragment 16) exercise tiny-fragment rejection.
  std::size_t fragment_payload = 0;
  /// Deliver each datagram's fragments in reverse order.
  bool fragment_reverse = false;
  /// ip_id of the first emitted datagram (incremented per datagram).
  std::uint16_t first_ip_id = 1;
};

/// One TCP segment in delivery order.
struct SegmentRecord {
  std::uint32_t seq = 0;
  Bytes data;
};

struct AdversarialTrace {
  net::FiveTuple flow;
  std::uint32_t initial_seq = 0;
  /// The untransformed stream the sender "meant".
  Bytes clean_stream;
  /// TCP segments in delivery order (before IP fragmentation).
  std::vector<SegmentRecord> segments;
  /// Fully-formed packets in delivery order, IP fragmentation applied.
  std::vector<net::Packet> packets;
};

/// Applies the spec's evasion transforms to `clean`.
AdversarialTrace make_evasion_trace(const net::FiveTuple& flow,
                                    BytesView clean, const EvasionSpec& spec);

/// What the scan path sees after policy normalization.
struct NormalizedView {
  Bytes bytes;
  /// At least one overlap carried differing bytes.
  bool ambiguous = false;
  std::uint64_t conflicting_bytes = 0;
};

/// Reference model of StreamReassembler's policy semantics: a per-byte
/// watermark simulation over the delivered segments. Assumes max_buffered
/// is never exceeded (the generators stay far below it); models the
/// released-history window, max_gap, and poison-on-reject exactly.
NormalizedView normalize_segments(std::uint32_t initial_seq,
                                  const std::vector<SegmentRecord>& delivery,
                                  net::OverlapPolicy policy,
                                  const net::ReassemblyConfig& config = {});

/// Reference model for a full trace: an independent per-datagram
/// defragmentation model (bounds, tiny-fragment and conflict handling, no
/// capacity/idle eviction — generator traces stay below those bounds) feeds
/// the segment model above. `policy` overrides the overlap policy of both
/// configs.
NormalizedView normalize_trace(const AdversarialTrace& trace,
                               net::OverlapPolicy policy,
                               const net::ReassemblyConfig& reassembly = {},
                               const net::DefragConfig& defrag = {});

}  // namespace dpisvc::workload
