#include "workload/pattern_gen.hpp"

#include <set>
#include <stdexcept>

namespace dpisvc::workload {

namespace {

// Word fragments seen in protocol headers and exploit strings; used to make
// Snort-like patterns look like real rule content rather than noise.
const char* const kFragments[] = {
    "GET ",    "POST ",  "HTTP/1.", "Host: ",  "User-Agent",
    "cmd.exe", "/bin/sh", "passwd",  "admin",   "login",
    "script",  "eval(",   "base64",  "shell",   "exploit",
    "overflow", "payload", "download", "update",  "config",
    "select ", "union ",  "insert ", "drop ",   "0x90",
    "\\x90\\x90", "svchost", "kernel32", "winexec", "registry",
};

char random_printable(Rng& rng) {
  // Letters and digits dominate; occasional punctuation.
  const std::uint64_t roll = rng.uniform(0, 99);
  if (roll < 55) return static_cast<char>('a' + rng.index(26));
  if (roll < 70) return static_cast<char>('A' + rng.index(26));
  if (roll < 85) return static_cast<char>('0' + rng.index(10));
  const char punct[] = "/.-_=&%?:;()[]{}<>!";
  return punct[rng.index(sizeof(punct) - 1)];
}

std::string random_pattern_body(Rng& rng, std::size_t length,
                                bool printable, double fragment_probability) {
  std::string out;
  out.reserve(length);
  if (printable) {
    while (out.size() < length) {
      if (rng.bernoulli(fragment_probability)) {
        out += kFragments[rng.index(std::size(kFragments))];
      } else {
        out.push_back(random_printable(rng));
      }
    }
    out.resize(length);
  } else {
    for (std::size_t i = 0; i < length; ++i) {
      out.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
  }
  return out;
}

std::size_t random_length(Rng& rng, const PatternSetConfig& config) {
  // Geometric-ish tail: most patterns near the minimum, few long ones,
  // matching the shape of real signature length histograms.
  std::size_t length = config.min_length;
  while (length < config.max_length && rng.bernoulli(0.75)) {
    length += 1 + rng.index(4);
  }
  return std::min(length, config.max_length);
}

}  // namespace

std::vector<std::string> generate_patterns(const PatternSetConfig& config) {
  if (config.min_length == 0 || config.min_length > config.max_length) {
    throw std::invalid_argument("generate_patterns: bad length bounds");
  }
  Rng rng(config.seed);
  std::set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(config.count);
  while (out.size() < config.count) {
    std::string pattern;
    if (!out.empty() && rng.bernoulli(config.shared_prefix_probability)) {
      // Extend a stem of an existing pattern (rule-family structure).
      const std::string& base = out[rng.index(out.size())];
      const std::size_t stem =
          std::min(base.size(), config.min_length / 2 + rng.index(base.size()));
      pattern = base.substr(0, stem);
    }
    const std::size_t target =
        std::max(random_length(rng, config), pattern.size() + 1);
    pattern += random_pattern_body(rng, target - pattern.size(),
                                   config.printable,
                                   config.fragment_probability);
    if (pattern.size() < config.min_length) {
      pattern += random_pattern_body(rng, config.min_length - pattern.size(),
                                     config.printable,
                                     config.fragment_probability);
    }
    if (seen.insert(pattern).second) {
      out.push_back(std::move(pattern));
    }
  }
  return out;
}

PatternSetConfig snort_like(std::size_t count, std::uint64_t seed) {
  PatternSetConfig config;
  config.count = count;
  config.min_length = 8;
  config.max_length = 64;
  config.printable = true;
  config.shared_prefix_probability = 0.25;
  config.seed = seed;
  return config;
}

PatternSetConfig clamav_like(std::size_t count, std::uint64_t seed) {
  PatternSetConfig config;
  config.count = count;
  config.min_length = 8;
  config.max_length = 40;
  config.printable = false;
  config.shared_prefix_probability = 0.1;
  config.seed = seed;
  return config;
}

std::vector<std::vector<std::string>> split_random(
    const std::vector<std::string>& patterns, std::size_t parts,
    std::uint64_t seed) {
  if (parts == 0) {
    throw std::invalid_argument("split_random: parts must be positive");
  }
  Rng rng(seed);
  std::vector<std::vector<std::string>> out(parts);
  std::vector<std::string> shuffled = patterns;
  rng.shuffle(shuffled);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    out[i % parts].push_back(std::move(shuffled[i]));
  }
  return out;
}

std::vector<std::string> generate_regex_rules(std::size_t count,
                                              std::uint64_t seed) {
  Rng rng(seed);
  const char* const glue[] = {R"(\s*)", R"(\d+)", R"(\s+\w+\s+)", R"([a-z]*)",
                              R"(.{0,8})"};
  std::set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(count);
  PatternSetConfig anchors_config;
  anchors_config.printable = true;
  anchors_config.min_length = 8;
  anchors_config.max_length = 20;
  while (out.size() < count) {
    std::string rule;
    const std::size_t pieces = 1 + rng.index(3);
    for (std::size_t i = 0; i < pieces; ++i) {
      if (i > 0) {
        rule += glue[rng.index(std::size(glue))];
      }
      const std::size_t len = 8 + rng.index(12);
      // Anchor text must be escape-free: letters and digits only.
      for (std::size_t j = 0; j < len; ++j) {
        const std::uint64_t roll = rng.uniform(0, 35);
        rule.push_back(roll < 26 ? static_cast<char>('a' + roll)
                                 : static_cast<char>('0' + (roll - 26)));
      }
    }
    if (seen.insert(rule).second) {
      out.push_back(std::move(rule));
    }
  }
  return out;
}

}  // namespace dpisvc::workload
