// Synthetic pattern-set generators (workload substrate).
//
// The paper evaluates with exact-match patterns of length >= 8 taken from
// Snort (up to 4,356 patterns) and ClamAV (31,827 patterns). Those rule sets
// are not redistributable here, so we generate synthetic sets that preserve
// the properties that drive DFA size and scan throughput:
//   - cardinality (calibrated to the paper's counts),
//   - minimum length 8 and a long-tailed length distribution,
//   - alphabet mix: Snort-like sets are mostly printable protocol/exploit
//     text; ClamAV-like sets are binary signatures (uniform bytes),
//   - limited shared-prefix structure (some patterns share stems, as real
//     rule families do).
// Generators are deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dpisvc::workload {

struct PatternSetConfig {
  std::size_t count = 1000;
  std::size_t min_length = 8;   ///< Paper: "length eight characters or more".
  std::size_t max_length = 64;
  /// Probability that a new pattern extends a stem shared with an earlier
  /// pattern (rule families share prefixes).
  double shared_prefix_probability = 0.2;
  /// If true, bytes are drawn from printable ASCII words/digits/punctuation
  /// (Snort-like); if false, uniform binary (ClamAV-like).
  bool printable = true;
  /// Probability that a printable pattern embeds a protocol/exploit word
  /// fragment (set to 0 for patterns that never occur in benign HTTP-like
  /// traffic — useful when an experiment needs a controlled match rate).
  double fragment_probability = 0.35;
  std::uint64_t seed = 1;
};

/// Generates `config.count` distinct patterns.
std::vector<std::string> generate_patterns(const PatternSetConfig& config);

/// Snort-like set: printable exploit/protocol strings, default 4,356 (the
/// paper's Snort exact-pattern count).
PatternSetConfig snort_like(std::size_t count = 4356, std::uint64_t seed = 17);

/// ClamAV-like set: binary signatures, default 31,827 (the paper's count).
PatternSetConfig clamav_like(std::size_t count = 31827,
                             std::uint64_t seed = 23);

/// Randomly partitions a pattern set into `parts` disjoint subsets (the
/// paper's Snort1/Snort2 split, §6.4). Every input pattern lands in exactly
/// one part.
std::vector<std::vector<std::string>> split_random(
    const std::vector<std::string>& patterns, std::size_t parts,
    std::uint64_t seed);

/// Generates regex rules in the style DPI rule sets use: mandatory literal
/// anchors (>= 8 bytes) separated by character-class glue, e.g.
/// "User-Agent: evilbot\d+\s*download". Useful for exercising the §5.3 path.
std::vector<std::string> generate_regex_rules(std::size_t count,
                                              std::uint64_t seed);

}  // namespace dpisvc::workload
