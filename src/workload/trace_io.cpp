#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dpisvc::workload {

namespace {
constexpr std::uint32_t kTraceMagic = 0x44545243;  // "DTRC"
constexpr std::uint16_t kTraceVersion = 1;

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

void write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot create " + path);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    throw std::runtime_error("write failed for " + path);
  }
}
}  // namespace

std::string patterns_to_text(const std::vector<std::string>& patterns) {
  std::ostringstream out;
  out << "# dpisvc pattern set: " << patterns.size()
      << " patterns, hex-encoded, one per line\n";
  for (const std::string& p : patterns) {
    out << to_hex(to_bytes(p)) << '\n';
  }
  return out.str();
}

std::vector<std::string> patterns_from_text(std::string_view text) {
  std::vector<std::string> out;
  std::size_t line_start = 0;
  std::size_t line_number = 0;
  while (line_start <= text.size()) {
    ++line_number;
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    line_start = line_end + 1;
    if (line.empty() || line.front() == '#') {
      if (line_end == text.size()) break;
      continue;
    }
    Bytes raw;
    try {
      raw = from_hex(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("pattern file line " +
                                  std::to_string(line_number) + ": " +
                                  e.what());
    }
    if (raw.empty()) {
      throw std::invalid_argument("pattern file line " +
                                  std::to_string(line_number) +
                                  ": empty pattern");
    }
    out.emplace_back(raw.begin(), raw.end());
    if (line_end == text.size()) break;
  }
  return out;
}

void save_patterns(const std::string& path,
                   const std::vector<std::string>& patterns) {
  const std::string text = patterns_to_text(patterns);
  write_file(path, to_bytes(text));
}

std::vector<std::string> load_patterns(const std::string& path) {
  const Bytes data = read_file(path);
  return patterns_from_text(as_text(data));
}

Bytes trace_to_bytes(const Trace& trace) {
  Bytes out;
  put_be(out, kTraceMagic, 4);
  put_be(out, kTraceVersion, 2);
  put_be(out, trace.size(), 4);
  for (const TracePacket& p : trace) {
    put_be(out, p.tuple.src_ip.value, 4);
    put_be(out, p.tuple.dst_ip.value, 4);
    put_be(out, p.tuple.src_port, 2);
    put_be(out, p.tuple.dst_port, 2);
    out.push_back(static_cast<std::uint8_t>(p.tuple.proto));
    put_be(out, p.payload.size(), 4);
    out.insert(out.end(), p.payload.begin(), p.payload.end());
  }
  return out;
}

Trace trace_from_bytes(BytesView data) {
  std::size_t at = 0;
  auto u = [&](int width) {
    const std::uint64_t v = get_be(data, at, width);
    at += static_cast<std::size_t>(width);
    return v;
  };
  if (u(4) != kTraceMagic) {
    throw std::invalid_argument("trace file: bad magic");
  }
  if (u(2) != kTraceVersion) {
    throw std::invalid_argument("trace file: unsupported version");
  }
  const auto count = static_cast<std::size_t>(u(4));
  // Each packet needs at least 17 header bytes; a larger count than the
  // remaining input can hold is corruption, not a huge trace (and must not
  // drive a huge allocation).
  if (count > (data.size() - at) / 17) {
    throw std::invalid_argument("trace file: implausible packet count");
  }
  Trace trace;
  trace.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TracePacket p;
    p.tuple.src_ip = net::Ipv4Addr(static_cast<std::uint32_t>(u(4)));
    p.tuple.dst_ip = net::Ipv4Addr(static_cast<std::uint32_t>(u(4)));
    p.tuple.src_port = static_cast<std::uint16_t>(u(2));
    p.tuple.dst_port = static_cast<std::uint16_t>(u(2));
    p.tuple.proto = static_cast<net::IpProto>(u(1));
    const auto len = static_cast<std::size_t>(u(4));
    if (at + len > data.size()) {
      throw std::invalid_argument("trace file: truncated payload");
    }
    p.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(at),
                     data.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
    trace.push_back(std::move(p));
  }
  if (at != data.size()) {
    throw std::invalid_argument("trace file: trailing bytes");
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  write_file(path, trace_to_bytes(trace));
}

Trace load_trace(const std::string& path) {
  const Bytes data = read_file(path);
  return trace_from_bytes(data);
}

}  // namespace dpisvc::workload
