// On-disk formats for pattern sets and traces, shared by the CLI tool and
// any external tooling.
//
// Pattern file: text, one pattern per line, hex-encoded (binary-safe;
// ClamAV-style signatures are raw bytes). Lines starting with '#' and blank
// lines are ignored.
//
// Trace file: binary.
//   magic "DTRC" | u16 version | u32 packet count | per packet:
//   src_ip u32 | dst_ip u32 | src_port u16 | dst_port u16 | proto u8 |
//   payload_len u32 | payload bytes
// All integers big-endian.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc::workload {

// --- pattern files ------------------------------------------------------------

/// Serializes patterns to the hex-line text format.
std::string patterns_to_text(const std::vector<std::string>& patterns);

/// Parses the hex-line format; throws std::invalid_argument on bad lines.
std::vector<std::string> patterns_from_text(std::string_view text);

/// File helpers (throw std::runtime_error on I/O failure).
void save_patterns(const std::string& path,
                   const std::vector<std::string>& patterns);
std::vector<std::string> load_patterns(const std::string& path);

// --- trace files ----------------------------------------------------------------

Bytes trace_to_bytes(const Trace& trace);

/// Throws std::invalid_argument on malformed input.
Trace trace_from_bytes(BytesView data);

void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace dpisvc::workload
