#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpisvc::workload {

namespace {

const char* const kHttpHeaders[] = {
    "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n"
    "User-Agent: Mozilla/5.0 (X11; Linux x86_64)\r\nAccept: text/html\r\n\r\n",
    "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n"
    "Server: nginx/1.4.6\r\nCache-Control: max-age=3600\r\n\r\n",
    "POST /api/v1/submit HTTP/1.1\r\nHost: api.example.org\r\n"
    "Content-Type: application/json\r\nContent-Length: 512\r\n\r\n",
    "HTTP/1.1 304 Not Modified\r\nETag: \"5f2a\"\r\nVary: Accept-Encoding\r\n\r\n",
};

const char* const kWords[] = {
    "the",     "of",     "and",     "href",    "div",     "class",
    "span",    "script", "function", "return",  "var",     "document",
    "window",  "style",  "width",   "height",  "content", "page",
    "search",  "image",  "title",   "link",    "value",   "data",
    "index",   "html",   "body",    "color",   "margin",  "padding",
};

void append_body_text(Bytes& out, Rng& rng, std::size_t target) {
  while (out.size() < target) {
    if (rng.bernoulli(0.12)) {
      const char* tags[] = {"<div>", "</div>", "<a ", "\">", "<p>", "</p>"};
      const char* t = tags[rng.index(std::size(tags))];
      out.insert(out.end(), t, t + std::char_traits<char>::length(t));
    } else {
      const char* w = kWords[rng.index(std::size(kWords))];
      out.insert(out.end(), w, w + std::char_traits<char>::length(w));
      out.push_back(rng.bernoulli(0.85) ? ' ' : '\n');
    }
  }
  out.resize(target);
}

net::FiveTuple make_flow(Rng& rng, std::size_t num_flows, std::size_t index) {
  // Deterministic flow endpoints: flow i maps to a stable 5-tuple.
  (void)rng;
  net::FiveTuple t;
  t.src_ip = net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(index / 250),
                           static_cast<std::uint8_t>(1 + index % 250));
  t.dst_ip = net::Ipv4Addr(93, 184, 216, 34);
  t.src_port = static_cast<std::uint16_t>(20000 + index % num_flows);
  t.dst_port = 80;
  t.proto = net::IpProto::kTcp;
  return t;
}

void plant_pattern(Bytes& payload, Rng& rng, const std::string& pattern) {
  if (pattern.empty()) return;
  if (payload.size() < pattern.size()) {
    payload.resize(pattern.size());
  }
  const std::size_t at = rng.index(payload.size() - pattern.size() + 1);
  std::copy(pattern.begin(), pattern.end(),
            payload.begin() + static_cast<std::ptrdiff_t>(at));
}

Trace generate_with(const TrafficConfig& config,
                    void (*fill)(Bytes&, Rng&, std::size_t)) {
  if (config.min_payload == 0 || config.min_payload > config.max_payload) {
    throw std::invalid_argument("traffic config: bad payload bounds");
  }
  if (config.num_flows == 0) {
    throw std::invalid_argument("traffic config: need at least one flow");
  }
  Rng rng(config.seed);
  Trace trace;
  trace.reserve(config.num_packets);
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    TracePacket pkt;
    pkt.tuple = make_flow(rng, config.num_flows, i % config.num_flows);
    const std::size_t size = config.min_payload +
                             rng.index(config.max_payload -
                                       config.min_payload + 1);
    fill(pkt.payload, rng, size);
    if (!config.planted_patterns.empty() &&
        rng.bernoulli(config.planted_match_rate)) {
      plant_pattern(pkt.payload, rng,
                    config.planted_patterns[rng.index(
                        config.planted_patterns.size())]);
    }
    trace.push_back(std::move(pkt));
  }
  return trace;
}

void fill_http(Bytes& out, Rng& rng, std::size_t target) {
  const char* header = kHttpHeaders[rng.index(std::size(kHttpHeaders))];
  const std::size_t header_len = std::char_traits<char>::length(header);
  out.insert(out.end(), header, header + std::min(header_len, target));
  append_body_text(out, rng, target);
}

void fill_random(Bytes& out, Rng& rng, std::size_t target) {
  out.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
  }
}

}  // namespace

Trace generate_http_trace(const TrafficConfig& config) {
  return generate_with(config, &fill_http);
}

Trace generate_random_trace(const TrafficConfig& config) {
  return generate_with(config, &fill_random);
}

Trace generate_attack_trace(const TrafficConfig& config,
                            const std::vector<std::string>& target_patterns) {
  if (target_patterns.empty()) {
    throw std::invalid_argument("attack trace: need target patterns");
  }
  Rng rng(config.seed ^ 0xA77ACCULL);
  Trace trace;
  trace.reserve(config.num_packets);
  for (std::size_t i = 0; i < config.num_packets; ++i) {
    TracePacket pkt;
    pkt.tuple = make_flow(rng, config.num_flows, i % config.num_flows);
    const std::size_t size = config.min_payload +
                             rng.index(config.max_payload -
                                       config.min_payload + 1);
    pkt.payload.reserve(size);
    // Stitch whole patterns and deep prefixes back to back: every byte keeps
    // the automaton in deep states and accepting states fire densely.
    while (pkt.payload.size() < size) {
      const std::string& p =
          target_patterns[rng.index(target_patterns.size())];
      const std::size_t take =
          rng.bernoulli(0.6) ? p.size() : 1 + rng.index(p.size());
      pkt.payload.insert(pkt.payload.end(), p.begin(),
                         p.begin() + static_cast<std::ptrdiff_t>(take));
    }
    pkt.payload.resize(size);
    trace.push_back(std::move(pkt));
  }
  return trace;
}

std::size_t total_payload_bytes(const Trace& trace) {
  std::size_t total = 0;
  for (const TracePacket& pkt : trace) {
    total += pkt.payload.size();
  }
  return total;
}

net::Packet to_packet(const TracePacket& trace_packet, std::uint16_t ip_id) {
  net::Packet p;
  p.src_mac = net::MacAddr(0x020000000001ULL);
  p.dst_mac = net::MacAddr(0x020000000002ULL);
  p.tuple = trace_packet.tuple;
  p.ip_id = ip_id;
  p.payload = trace_packet.payload;
  return p;
}

}  // namespace dpisvc::workload
