// Synthetic traffic generation (workload substrate).
//
// The paper's input traffic was a 9 GB campus trace and a 17 MB HTTP crawl
// of popular websites, with the key measured property that "more than 90% of
// the packets have no matches". The generators here produce packet streams
// with the properties the experiments depend on:
//   - HTTP-like payloads (request/response headers plus HTML/JS/text bodies
//     with realistic byte frequencies),
//   - a controllable planted-match rate against a supplied pattern set,
//   - packets distributed over a configurable number of flows (for stateful
//     scanning and migration experiments),
//   - adversarial "heavy" traffic for the MCA² experiments (§4.3.1):
//     payloads stitched from pattern fragments that maximize automaton work
//     and match-report volume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"

namespace dpisvc::workload {

/// One generated packet: flow plus L7 payload.
struct TracePacket {
  net::FiveTuple tuple;
  Bytes payload;
};

using Trace = std::vector<TracePacket>;

struct TrafficConfig {
  std::size_t num_packets = 1000;
  std::size_t min_payload = 256;
  std::size_t max_payload = 1460;  ///< typical MSS-bounded segment
  std::size_t num_flows = 50;
  /// Fraction of packets that get one pattern from `planted_patterns`
  /// spliced into the payload (the paper's traces: < 10% of packets match).
  double planted_match_rate = 0.05;
  std::vector<std::string> planted_patterns;
  std::uint64_t seed = 7;
};

/// HTTP-like content: header blocks + word-frequency body text.
Trace generate_http_trace(const TrafficConfig& config);

/// Uniform random bytes (binary transfer / encrypted-looking traffic).
Trace generate_random_trace(const TrafficConfig& config);

/// Adversarial heavy traffic (§4.3.1): payloads consisting of concatenated
/// fragments and repetitions of the given patterns, driving the automaton
/// through deep states and producing dense match lists.
Trace generate_attack_trace(const TrafficConfig& config,
                            const std::vector<std::string>& target_patterns);

/// Total payload bytes in a trace.
std::size_t total_payload_bytes(const Trace& trace);

/// Wraps a trace packet into a full net::Packet for fabric-level tests.
net::Packet to_packet(const TracePacket& trace_packet, std::uint16_t ip_id);

}  // namespace dpisvc::workload
