// Tests for the Aho-Corasick module: trie construction, full-table and
// compressed automata, dense accepting-state renumbering, suffix
// propagation, serialization — with property tests against naive matching.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ac/compressed_automaton.hpp"
#include "ac/full_automaton.hpp"
#include "ac/serialize.hpp"
#include "ac/trie.hpp"
#include "common/rng.hpp"

namespace dpisvc::ac {
namespace {

Bytes bytes_of(std::string_view s) { return to_bytes(s); }

/// Collects (end_offset, pattern_index) matches from an automaton scan.
template <typename Automaton>
std::set<std::pair<std::uint64_t, PatternIndex>> scan_all(
    const Automaton& automaton, std::string_view text) {
  std::set<std::pair<std::uint64_t, PatternIndex>> out;
  const Bytes data = bytes_of(text);
  automaton.scan(data, [&](Match m) {
    for (PatternIndex p : automaton.matches_at(m.accept_state)) {
      out.emplace(m.end_offset, p);
    }
  });
  return out;
}

/// Naive reference: all (end_offset, pattern_index) occurrences.
std::set<std::pair<std::uint64_t, PatternIndex>> naive_matches(
    const std::vector<std::string>& patterns, std::string_view text) {
  std::set<std::pair<std::uint64_t, PatternIndex>> out;
  for (PatternIndex i = 0; i < patterns.size(); ++i) {
    const std::string& p = patterns[i];
    if (p.empty() || p.size() > text.size()) continue;
    for (std::size_t at = 0; at + p.size() <= text.size(); ++at) {
      if (text.substr(at, p.size()) == p) {
        out.emplace(at + p.size(), i);
      }
    }
  }
  return out;
}

template <typename Automaton>
Automaton build_from(const std::vector<std::string>& patterns) {
  Trie trie;
  for (PatternIndex i = 0; i < patterns.size(); ++i) {
    trie.insert(patterns[i], i);
  }
  return Automaton::build(trie);
}

// --- trie ----------------------------------------------------------------------

TEST(Trie, SharedPrefixesShareStates) {
  Trie trie;
  trie.insert(std::string_view("abcd"), 0);
  trie.insert(std::string_view("abef"), 1);
  // root + ab (2) + cd (2) + ef (2) = 7
  EXPECT_EQ(trie.num_states(), 7u);
}

TEST(Trie, RejectsEmptyPattern) {
  Trie trie;
  EXPECT_THROW(trie.insert(std::string_view(""), 0), std::invalid_argument);
}

TEST(Trie, RejectsInsertAfterFinalize) {
  Trie trie;
  trie.insert(std::string_view("x"), 0);
  trie.finalize();
  EXPECT_THROW(trie.insert(std::string_view("y"), 1), std::logic_error);
}

TEST(Trie, FailureLinksPointToLongestSuffix) {
  // Patterns: {ab, bc}. State for "ab" must fail to state "b" (prefix of bc).
  Trie trie;
  trie.insert(std::string_view("ab"), 0);
  trie.insert(std::string_view("bc"), 1);
  trie.finalize();
  const StateIndex a = trie.forward(Trie::root(), 'a');
  const StateIndex ab = trie.forward(a, 'b');
  const StateIndex b = trie.forward(Trie::root(), 'b');
  EXPECT_EQ(trie.fail(ab), b);
  EXPECT_EQ(trie.fail(a), Trie::root());
  EXPECT_EQ(trie.fail(b), Trie::root());
}

TEST(Trie, OutputPropagationForSuffixPatterns) {
  // "DEF" is a suffix of "ABCDEF": the ABCDEF terminal state must report
  // both patterns (§5.1).
  Trie trie;
  trie.insert(std::string_view("ABCDEF"), 0);
  trie.insert(std::string_view("DEF"), 1);
  trie.finalize();
  StateIndex s = Trie::root();
  for (char c : std::string("ABCDEF")) {
    s = trie.forward(s, static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(trie.output(s), (std::vector<PatternIndex>{0, 1}));
}

TEST(Trie, DepthTracksLabelLength) {
  Trie trie;
  trie.insert(std::string_view("xyz"), 0);
  trie.finalize();
  StateIndex s = Trie::root();
  EXPECT_EQ(trie.depth(s), 0u);
  s = trie.forward(s, 'x');
  EXPECT_EQ(trie.depth(s), 1u);
  s = trie.forward(s, 'y');
  s = trie.forward(s, 'z');
  EXPECT_EQ(trie.depth(s), 3u);
}

// --- paper worked example ---------------------------------------------------------

// Figure 4/7 pattern sets.
const std::vector<std::string> kPaperSet = {
    "E", "BE", "BD", "BCD", "BCAA", "CDBCAB",  // P0
    "EDAE", "BE", "CDBA", "CBD",               // P1 (BE repeats in both sets)
};

TEST(FullAutomaton, PaperExampleMatches) {
  const auto automaton = build_from<FullAutomaton>(kPaperSet);
  const auto found = scan_all(automaton, "CDBCABE");
  // Expected: CDBCAB at 6; BE at 7; E at 7 (end offsets are 1-based counts).
  EXPECT_TRUE(found.count({6, 5}));  // CDBCAB
  EXPECT_TRUE(found.count({7, 1}));  // BE (P0 id 1)
  EXPECT_TRUE(found.count({7, 7}));  // BE (P1 id 7)
  EXPECT_TRUE(found.count({7, 0}));  // E
  EXPECT_EQ(found, naive_matches(kPaperSet, "CDBCABE"));
}

// --- dense renumbering invariants (§5.1) -------------------------------------------

TEST(FullAutomaton, AcceptingStatesAreDenselyRenumbered) {
  const auto automaton = build_from<FullAutomaton>(kPaperSet);
  // 9 distinct strings (BE registered twice but one accepting state… the
  // trie holds 10 insertions, 9 distinct terminals) plus CDBCAB containing
  // suffix hits: accepting state count = number of states with non-empty
  // output, which includes states accepting via suffix propagation.
  const std::uint32_t f = automaton.num_accepting();
  EXPECT_GT(f, 0u);
  // Every state id below f accepts; every id at or above f does not.
  for (StateIndex s = 0; s < automaton.num_states(); ++s) {
    if (s < f) {
      EXPECT_FALSE(automaton.matches_at(s).empty());
    }
    EXPECT_EQ(automaton.is_accepting(s), s < f);
  }
  EXPECT_FALSE(automaton.is_accepting(automaton.start_state()));
}

TEST(FullAutomaton, TransitionsAreTotal) {
  const auto automaton = build_from<FullAutomaton>(kPaperSet);
  for (StateIndex s = 0; s < automaton.num_states(); ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      EXPECT_LT(automaton.step(s, static_cast<std::uint8_t>(b)),
                automaton.num_states());
    }
  }
}

TEST(FullAutomaton, SuffixPropagationInMatchTable) {
  const auto automaton =
      build_from<FullAutomaton>({"ABCDEF", "DEF", "EF"});
  const auto found = scan_all(automaton, "xxABCDEFyy");
  EXPECT_TRUE(found.count({8, 0}));
  EXPECT_TRUE(found.count({8, 1}));
  EXPECT_TRUE(found.count({8, 2}));
}

TEST(FullAutomaton, StatefulResumeEqualsOneShot) {
  const auto automaton = build_from<FullAutomaton>({"needle", "haystack"});
  const std::string part1 = "xxxnee";
  const std::string part2 = "dlexhaystackx";
  std::set<std::pair<std::uint64_t, PatternIndex>> resumed;
  StateIndex state = automaton.start_state();
  state = automaton.scan(bytes_of(part1), state, [&](Match m) {
    for (PatternIndex p : automaton.matches_at(m.accept_state)) {
      resumed.emplace(m.end_offset, p);
    }
  });
  const std::uint64_t offset = part1.size();
  automaton.scan(bytes_of(part2), state, [&](Match m) {
    for (PatternIndex p : automaton.matches_at(m.accept_state)) {
      resumed.emplace(offset + m.end_offset, p);
    }
  });
  EXPECT_EQ(resumed, naive_matches({"needle", "haystack"}, part1 + part2));
}

TEST(FullAutomaton, DepthOfAcceptingStateEqualsPatternLength) {
  const std::vector<std::string> patterns{"ab", "abcd", "xyz"};
  const auto automaton = build_from<FullAutomaton>(patterns);
  const Bytes data = bytes_of("abcd xyz");
  automaton.scan(data, [&](Match m) {
    // depth == label length; the primary (longest) pattern at this state.
    std::size_t max_len = 0;
    for (PatternIndex p : automaton.matches_at(m.accept_state)) {
      max_len = std::max(max_len, patterns[p].size());
    }
    EXPECT_EQ(automaton.depth(m.accept_state), max_len);
  });
}

// --- compressed automaton ----------------------------------------------------------

TEST(CompressedAutomaton, AgreesWithFullOnPaperExample) {
  const auto full = build_from<FullAutomaton>(kPaperSet);
  const auto compressed = build_from<CompressedAutomaton>(kPaperSet);
  const char* inputs[] = {"CDBCABE", "BCAA", "EDAE", "CBD",
                          "zzzz",    "BEBEBE", "DBCDBABCDE"};
  for (const char* input : inputs) {
    EXPECT_EQ(scan_all(full, input), scan_all(compressed, input)) << input;
  }
}

TEST(CompressedAutomaton, SameAcceptingNumbering) {
  const auto full = build_from<FullAutomaton>(kPaperSet);
  const auto compressed = build_from<CompressedAutomaton>(kPaperSet);
  ASSERT_EQ(full.num_accepting(), compressed.num_accepting());
  for (StateIndex s = 0; s < full.num_accepting(); ++s) {
    EXPECT_EQ(full.matches_at(s), compressed.matches_at(s));
  }
}

TEST(CompressedAutomaton, UsesLessMemoryThanFullTable) {
  const auto full = build_from<FullAutomaton>(kPaperSet);
  const auto compressed = build_from<CompressedAutomaton>(kPaperSet);
  EXPECT_LT(compressed.memory_bytes(), full.memory_bytes() / 10);
}

// --- randomized differential property tests -----------------------------------------

struct RandomCase {
  std::vector<std::string> patterns;
  std::string text;
};

RandomCase make_random_case(Rng& rng, int alphabet_size) {
  RandomCase c;
  const std::size_t num_patterns = 1 + rng.index(8);
  for (std::size_t i = 0; i < num_patterns; ++i) {
    std::string p;
    const std::size_t len = 1 + rng.index(6);
    for (std::size_t j = 0; j < len; ++j) {
      p.push_back(static_cast<char>('a' + rng.index(alphabet_size)));
    }
    c.patterns.push_back(std::move(p));
  }
  const std::size_t text_len = rng.index(64);
  for (std::size_t j = 0; j < text_len; ++j) {
    c.text.push_back(static_cast<char>('a' + rng.index(alphabet_size)));
  }
  return c;
}

class AcDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(AcDifferentialTest, FullMatchesNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const RandomCase c = make_random_case(rng, /*alphabet_size=*/3);
    const auto automaton = build_from<FullAutomaton>(c.patterns);
    EXPECT_EQ(scan_all(automaton, c.text), naive_matches(c.patterns, c.text))
        << "text=" << c.text;
  }
}

TEST_P(AcDifferentialTest, CompressedMatchesNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 2);
  for (int iter = 0; iter < 50; ++iter) {
    const RandomCase c = make_random_case(rng, /*alphabet_size=*/2);
    const auto automaton = build_from<CompressedAutomaton>(c.patterns);
    EXPECT_EQ(scan_all(automaton, c.text), naive_matches(c.patterns, c.text))
        << "text=" << c.text;
  }
}

TEST_P(AcDifferentialTest, SplitScanEqualsWholeScan) {
  // Property: scanning a text in two parts with carried state reports the
  // same matches as scanning it at once (the stateful-flow invariant).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  for (int iter = 0; iter < 30; ++iter) {
    const RandomCase c = make_random_case(rng, /*alphabet_size=*/2);
    const auto automaton = build_from<FullAutomaton>(c.patterns);
    const std::size_t cut = c.text.empty() ? 0 : rng.index(c.text.size() + 1);
    std::set<std::pair<std::uint64_t, PatternIndex>> split;
    StateIndex state = automaton.start_state();
    const Bytes first = bytes_of(std::string_view(c.text).substr(0, cut));
    const Bytes second = bytes_of(std::string_view(c.text).substr(cut));
    state = automaton.scan(first, state, [&](Match m) {
      for (PatternIndex p : automaton.matches_at(m.accept_state)) {
        split.emplace(m.end_offset, p);
      }
    });
    automaton.scan(second, state, [&](Match m) {
      for (PatternIndex p : automaton.matches_at(m.accept_state)) {
        split.emplace(cut + m.end_offset, p);
      }
    });
    EXPECT_EQ(split, scan_all(automaton, c.text));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcDifferentialTest, ::testing::Range(0, 8));

// --- serialization ---------------------------------------------------------------------

TEST(Serialize, RoundTripPreservesBehaviour) {
  const auto original = build_from<FullAutomaton>(kPaperSet);
  const Bytes blob = serialize(original);
  const FullAutomaton restored = deserialize(blob);
  EXPECT_EQ(restored.num_states(), original.num_states());
  EXPECT_EQ(restored.num_accepting(), original.num_accepting());
  EXPECT_EQ(restored.start_state(), original.start_state());
  const char* inputs[] = {"CDBCABE", "BCAA", "EDAEBEBD", ""};
  for (const char* input : inputs) {
    EXPECT_EQ(scan_all(restored, input), scan_all(original, input)) << input;
  }
}

TEST(Serialize, RejectsCorruptedInput) {
  const auto automaton = build_from<FullAutomaton>({"ab"});
  Bytes blob = serialize(automaton);
  EXPECT_THROW(deserialize(BytesView(blob.data(), 3)), std::invalid_argument);
  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(deserialize(bad_magic), std::invalid_argument);
  Bytes truncated(blob.begin(), blob.end() - 2);
  EXPECT_THROW(deserialize(truncated), std::invalid_argument);
  Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_THROW(deserialize(trailing), std::invalid_argument);
}

TEST(Serialize, SerializedSizeTracksTableSize) {
  const auto automaton = build_from<FullAutomaton>(kPaperSet);
  const Bytes blob = serialize(automaton);
  // Dominated by the num_states*256*4 table.
  EXPECT_GT(blob.size(),
            static_cast<std::size_t>(automaton.num_states()) * 256 * 4);
}

}  // namespace
}  // namespace dpisvc::ac
