// Tests for src/analysis: the per-regex cost model, the trie estimator, and
// the pattern-set analyzer — including the calibration tests that prove the
// predictions against actual src/ac / dpi::Engine compilation of the seed
// workloads (the estimator is verified, not vibes).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ac/full_automaton.hpp"
#include "ac/trie.hpp"
#include "analysis/analyzer.hpp"
#include "analysis/cost_model.hpp"
#include "dpi/engine.hpp"
#include "regex/program.hpp"
#include "workload/pattern_gen.hpp"

namespace dpisvc {
namespace {

using analysis::AnalysisOptions;
using analysis::analyze;
using analysis::analyze_regex;
using analysis::PatternSetReport;
using analysis::RegexCost;
using analysis::RegexCostOptions;
using analysis::TrieEstimator;
using analysis::TrieStats;

bool has_code(const std::vector<verify::Diagnostic>& diags,
              const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// --- regex cost model --------------------------------------------------------

TEST(RegexCostTest, SimpleLiteral) {
  const RegexCost cost = analyze_regex("GET /admin");
  EXPECT_EQ(cost.nfa_instructions, 11u);  // 10 bytes + match
  EXPECT_EQ(cost.closure_width_bound, 11u);
  EXPECT_EQ(cost.anchor_count, 1u);
  EXPECT_EQ(cost.longest_anchor, 10u);
  EXPECT_FALSE(cost.anchorless);
  EXPECT_FALSE(cost.has_unbounded_repeat);
  EXPECT_FALSE(cost.dfa_capped);
  EXPECT_FALSE(cost.program_oversized);
  // A literal's scanning DFA is the KMP automaton: |pattern| + 1 states at
  // most (distinct prefixes), possibly fewer after subset dedup.
  EXPECT_GE(cost.dfa_states, 2u);
  EXPECT_LE(cost.dfa_states, 12u);
}

TEST(RegexCostTest, PredictedProgramSizeIsExact) {
  // The AST-level arithmetic must replicate Program::compile's emission
  // counts exactly, for every construct the parser produces.
  const std::vector<std::string> expressions = {
      "abc",
      "a|b|cd",
      "(ab)+c",
      "a*b+c?",
      "a{3}b{2,5}c{4,}",
      "[a-z0-9]+\\d{2}",
      "^GET /[a-z]+ HTTP$",
      "(foo|bar(baz)?)*qux",
      "a(b(c(d)?)?)?e{0,3}",
      ".\\w\\s[^a-f]{2,4}",
  };
  for (const std::string& expr : expressions) {
    const RegexCost cost = analyze_regex(expr);
    const regex::Program program = regex::Program::compile(expr, {});
    EXPECT_EQ(cost.nfa_instructions, program.size()) << expr;
    std::size_t bytes = 0;
    for (const regex::Inst& inst : program.code()) {
      if (inst.op == regex::Op::kByte) ++bytes;
    }
    EXPECT_EQ(cost.closure_width_bound, bytes + 1) << expr;
  }
}

TEST(RegexCostTest, StructuralFlags) {
  const RegexCost star = analyze_regex(".*evil");
  EXPECT_TRUE(star.has_unbounded_repeat);
  EXPECT_TRUE(star.large_class_repeat);  // '.' is a 256-byte class
  EXPECT_EQ(star.max_class_size, 256u);
  EXPECT_FALSE(star.anchorless);  // "evil" anchors it

  const RegexCost bounded = analyze_regex("[a-z]{2,8}");
  EXPECT_FALSE(bounded.has_unbounded_repeat);
  EXPECT_FALSE(bounded.large_class_repeat);
  EXPECT_TRUE(bounded.anchorless);  // classes yield no literal anchor

  const RegexCost open = analyze_regex("ab{3,}");
  EXPECT_TRUE(open.has_unbounded_repeat);
  EXPECT_FALSE(open.large_class_repeat);  // 1-byte class under the repeat
}

TEST(RegexCostTest, OversizedProgramIsPredictedNotMaterialized) {
  // ~10^9 instructions from 22 bytes of input; must flag instantly without
  // allocating the program.
  const RegexCost cost = analyze_regex("((a{999}){999}){999}");
  EXPECT_TRUE(cost.program_oversized);
  EXPECT_TRUE(cost.dfa_capped);
  EXPECT_GT(cost.nfa_instructions, std::size_t{1} << 20);
}

TEST(RegexCostTest, SubsetConstructionCapsOnBlowup) {
  RegexCostOptions options;
  options.max_dfa_states = 64;
  // k unanchored wildcards with bounded gaps force exponential-ish subset
  // growth — the classic multi-track blow-up.
  const RegexCost cost =
      analyze_regex("a.{8}b.{8}c.{8}d.{8}e.{8}f", options);
  EXPECT_TRUE(cost.dfa_capped);
  EXPECT_EQ(cost.dfa_states, 64u);
}

TEST(RegexCostTest, ByteClassPartition) {
  const RegexCost cost = analyze_regex("[ab][ab]x");
  // Classes {a,b}, {x}: partition is {a,b}, {x}, everything-else = 3.
  EXPECT_EQ(cost.byte_classes, 3u);
}

TEST(RegexCostTest, SyntaxErrorPropagates) {
  EXPECT_THROW(analyze_regex("(unclosed"), regex::SyntaxError);
}

// --- trie estimator ----------------------------------------------------------

TEST(TrieEstimatorTest, MarginalGrowthAndSharedPrefixes) {
  TrieEstimator trie;
  EXPECT_EQ(trie.insert("hello"), 5u);
  EXPECT_EQ(trie.insert("help"), 1u);   // "hel" shared, only 'p' is new
  EXPECT_EQ(trie.insert("hel"), 0u);    // pure prefix: zero new states
  EXPECT_EQ(trie.num_states(), 7u);     // root + h e l l o + p

  const TrieStats stats = trie.stats();
  EXPECT_EQ(stats.states, 7u);
  EXPECT_EQ(stats.pattern_count, 3u);
  EXPECT_EQ(stats.shared_prefix_bytes, 3u + 3u);
  EXPECT_EQ(stats.max_depth, 5u);
}

TEST(TrieEstimatorTest, SuffixPropagationCounts) {
  TrieEstimator trie;
  trie.insert("he");
  trie.insert("she");
  trie.insert("his");
  trie.insert("hers");
  const TrieStats stats = trie.stats();
  // The classic AC example: "she"'s terminal also matches "he".
  EXPECT_EQ(stats.accepting, 4u);
  EXPECT_EQ(stats.match_entries, 5u);
  EXPECT_EQ(stats.suffix_overlap_entries, 1u);
}

TEST(TrieEstimatorTest, MatchesRealTrieOnSeedWorkload) {
  const std::vector<std::string> patterns =
      workload::generate_patterns(workload::snort_like(800, 17));

  TrieEstimator estimator;
  ac::Trie trie;
  std::set<std::string> distinct;
  for (const std::string& p : patterns) {
    if (!distinct.insert(p).second) continue;
    estimator.insert(p);
  }
  ac::PatternIndex index = 0;
  for (const std::string& p : distinct) {
    trie.insert(std::string_view(p), index++);
  }
  const auto automaton = ac::FullAutomaton::build(trie);
  const TrieStats stats = estimator.stats();
  EXPECT_EQ(stats.states, automaton.num_states());
  EXPECT_EQ(stats.accepting, automaton.num_accepting());
  std::size_t match_entries = 0;
  for (std::uint32_t s = 0; s < automaton.num_accepting(); ++s) {
    match_entries += automaton.matches_at(s).size();
  }
  EXPECT_EQ(stats.match_entries, match_entries);
}

// --- analyzer: spec-consistency mirror of Engine::compile --------------------

dpi::EngineSpec small_spec() {
  dpi::EngineSpec spec;
  spec.middleboxes.push_back({1, "ids", false, true, dpi::kNoStopCondition});
  spec.middleboxes.push_back({2, "dlp", true, true, dpi::kNoStopCondition});
  spec.exact_patterns.push_back({"attack-string", 1, 1});
  spec.exact_patterns.push_back({"confidential", 2, 1});
  spec.regex_patterns.push_back({"User-Agent: evil[a-z]+", 1, 2, false});
  spec.chains[1] = {1, 2};
  return spec;
}

TEST(AnalyzerTest, CleanSpecIsAdmissible) {
  const PatternSetReport report = analyze(small_spec());
  EXPECT_TRUE(report.admissible()) << (report.violations.empty()
                                           ? ""
                                           : report.violations[0].message);
  EXPECT_EQ(report.distinct_strings, 3u);  // 2 exact + 1 anchor
  EXPECT_EQ(report.anchor_bits, 1u);
  EXPECT_EQ(report.regexes.size(), 1u);
}

TEST(AnalyzerTest, MirrorsEveryCompileRejection) {
  {
    dpi::EngineSpec spec = small_spec();
    spec.middleboxes.push_back({0, "bad", false, true, 0});
    EXPECT_TRUE(has_code(analyze(spec).violations, "middlebox-id-out-of-range"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.middleboxes.push_back({1, "dup", false, true, 0});
    EXPECT_TRUE(has_code(analyze(spec).violations, "duplicate-middlebox-id"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.exact_patterns.push_back({"orphan", 7, 9});
    EXPECT_TRUE(has_code(analyze(spec).violations, "pattern-unknown-middlebox"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.exact_patterns.push_back({"", 1, 9});
    EXPECT_TRUE(has_code(analyze(spec).violations, "pattern-empty"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.regex_patterns.push_back({"x+", 7, 9, false});
    EXPECT_TRUE(has_code(analyze(spec).violations, "regex-unknown-middlebox"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.regex_patterns.push_back({"(broken", 1, 9, false});
    EXPECT_TRUE(has_code(analyze(spec).violations, "regex-syntax-error"));
    EXPECT_THROW(dpi::Engine::compile(spec), regex::SyntaxError);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.chains[2] = {1, 63};
    EXPECT_TRUE(has_code(analyze(spec).violations, "chain-unknown-middlebox"));
    EXPECT_THROW(dpi::Engine::compile(spec), std::invalid_argument);
  }
  {
    dpi::EngineSpec spec = small_spec();
    spec.regex_patterns.push_back({"anchor-one-literal", 1, 10, false});
    spec.regex_patterns.push_back({"anchor-two-literal", 1, 11, false});
    dpi::EngineConfig config;
    config.max_anchor_bits = 2;  // spec needs 3 distinct anchors
    AnalysisOptions options;
    options.engine = config;
    EXPECT_TRUE(has_code(analyze(spec, options).violations,
                         "anchor-bits-exceeded"));
    EXPECT_THROW(dpi::Engine::compile(spec, config), std::invalid_argument);
  }
}

TEST(AnalyzerTest, BudgetViolationsAndWarnings) {
  dpi::EngineSpec spec = small_spec();
  spec.regex_patterns.push_back({".*", 1, 20, false});

  AnalysisOptions strict;
  strict.budget.max_automaton_states = 5;
  strict.budget.reject_anchorless_regex = true;
  strict.budget.reject_unbounded_repeat = true;
  strict.budget.reject_large_class_repeat = true;
  const PatternSetReport rejected = analyze(spec, strict);
  EXPECT_FALSE(rejected.admissible());
  EXPECT_TRUE(has_code(rejected.violations, "states-over-budget"));
  EXPECT_TRUE(has_code(rejected.violations, "regex-anchorless"));
  EXPECT_TRUE(has_code(rejected.violations, "regex-unbounded-repeat"));
  EXPECT_TRUE(has_code(rejected.violations, "regex-large-class-repeat"));

  // The same findings demote to warnings when the budget does not police
  // them — and the spec still compiles (fail-closed only on violations).
  const PatternSetReport advisory = analyze(spec);
  EXPECT_TRUE(advisory.admissible());
  EXPECT_TRUE(has_code(advisory.warnings, "regex-anchorless"));
  EXPECT_TRUE(has_code(advisory.warnings, "regex-unbounded-repeat"));
  EXPECT_NO_THROW(dpi::Engine::compile(spec));
}

TEST(AnalyzerTest, PerMiddleboxQuotaAndMemoryBudget) {
  dpi::EngineSpec spec = small_spec();
  AnalysisOptions options;
  options.budget.max_patterns_per_middlebox = 1;
  EXPECT_TRUE(has_code(analyze(spec, options).violations,
                       "middlebox-quota-exceeded"));

  AnalysisOptions tiny_memory;
  tiny_memory.budget.max_memory_bytes = 128;
  EXPECT_TRUE(
      has_code(analyze(spec, tiny_memory).violations, "memory-over-budget"));
}

TEST(AnalyzerTest, CrossTenantDuplicateIsAdvisory) {
  dpi::EngineSpec spec = small_spec();
  spec.exact_patterns.push_back({"attack-string", 2, 40});  // tenant 2 too
  const PatternSetReport report = analyze(spec);
  EXPECT_TRUE(report.admissible());
  EXPECT_TRUE(has_code(report.warnings, "cross-tenant-duplicate"));
  // Shared registration adds zero automaton states.
  EXPECT_EQ(report.distinct_strings, 3u);
}

TEST(AnalyzerTest, OversizedRegexIsAlwaysFatal) {
  dpi::EngineSpec spec = small_spec();
  spec.regex_patterns.push_back({"((a{999}){999}){999}", 1, 30, false});
  const PatternSetReport report = analyze(spec);
  EXPECT_TRUE(has_code(report.violations, "regex-program-too-large"));
}

TEST(AnalyzerTest, ReportsAreDeterministic) {
  dpi::EngineSpec spec = small_spec();
  spec.regex_patterns.push_back({".*x[0-9]{2,}", 2, 21, false});
  const PatternSetReport a = analyze(spec);
  const PatternSetReport b = analyze(spec);
  EXPECT_EQ(a.predicted_states, b.predicted_states);
  EXPECT_EQ(a.predicted_memory_full, b.predicted_memory_full);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  ASSERT_EQ(a.warnings.size(), b.warnings.size());
  for (std::size_t i = 0; i < a.warnings.size(); ++i) {
    EXPECT_EQ(a.warnings[i].code, b.warnings[i].code);
    EXPECT_EQ(a.warnings[i].message, b.warnings[i].message);
  }
}

// --- calibration: predictions vs actual compilation --------------------------

dpi::EngineSpec seed_spec(std::size_t snort, std::size_t clamav,
                          std::size_t regexes) {
  dpi::EngineSpec spec;
  spec.middleboxes.push_back({1, "ids", false, true, dpi::kNoStopCondition});
  spec.middleboxes.push_back({2, "av", false, true, dpi::kNoStopCondition});
  spec.middleboxes.push_back({3, "dlp", true, true, dpi::kNoStopCondition});
  dpi::PatternId next = 1;
  for (const std::string& p :
       workload::generate_patterns(workload::snort_like(snort, 17))) {
    spec.exact_patterns.push_back({p, 1, next++});
  }
  for (const std::string& p :
       workload::generate_patterns(workload::clamav_like(clamav, 23))) {
    spec.exact_patterns.push_back({p, 2, next++});
  }
  for (const std::string& expr : workload::generate_regex_rules(regexes, 7)) {
    spec.regex_patterns.push_back({expr, 3, next++, false});
  }
  // Tenant 3 re-registers a slice of tenant 1's set (shared entries).
  for (std::size_t i = 0; i < spec.exact_patterns.size() && i < 16; i += 2) {
    spec.exact_patterns.push_back({spec.exact_patterns[i].bytes, 3, next++});
  }
  spec.chains[1] = {1, 2, 3};
  return spec;
}

void expect_calibrated(const dpi::EngineSpec& spec,
                       const dpi::EngineConfig& config) {
  AnalysisOptions options;
  options.engine = config;
  const PatternSetReport report = analyze(spec, options);
  ASSERT_TRUE(report.admissible())
      << (report.violations.empty() ? "" : report.violations[0].message);

  const auto engine = dpi::Engine::compile(spec, config);
  // State counts are modeled exactly (the estimator rebuilds the trie and
  // failure closure by definition): predicted == actual, factor 1.0.
  EXPECT_EQ(report.predicted_states, engine->num_automaton_states());
  EXPECT_EQ(report.predicted_accepting, engine->num_accepting_states());
  EXPECT_EQ(report.distinct_strings, engine->num_distinct_strings());
  std::size_t target_entries = 0;
  for (std::uint32_t s = 0; s < engine->num_accepting_states(); ++s) {
    target_entries += engine->accept_targets(s).size();
  }
  EXPECT_EQ(report.predicted_target_entries, target_entries);
  // Memory is modeled from the same element sizes the artifacts use, so it
  // too must be exact (kMemoryCalibrationFactor == 1.0 documents this).
  const std::size_t predicted = config.use_compressed_automaton
                                    ? report.predicted_memory_compressed
                                    : report.predicted_memory_full;
  EXPECT_EQ(predicted, engine->memory_bytes());
}

TEST(CalibrationTest, SnortClamavSeedWorkloadFullTable) {
  expect_calibrated(seed_spec(600, 400, 24), dpi::EngineConfig{});
}

TEST(CalibrationTest, SnortClamavSeedWorkloadCompressed) {
  dpi::EngineConfig config;
  config.use_compressed_automaton = true;
  expect_calibrated(seed_spec(600, 400, 24), config);
}

TEST(CalibrationTest, RegexOnlySpecUsesPlaceholderModel) {
  dpi::EngineSpec spec;
  spec.middleboxes.push_back({1, "rx", false, true, dpi::kNoStopCondition});
  spec.regex_patterns.push_back({"[0-9]{1,3}", 1, 1, false});  // anchorless
  expect_calibrated(spec, dpi::EngineConfig{});
}

TEST(CalibrationTest, EmptySpec) {
  dpi::EngineSpec spec;
  spec.middleboxes.push_back({1, "idle", false, true, dpi::kNoStopCondition});
  expect_calibrated(spec, dpi::EngineConfig{});
}

TEST(CalibrationTest, BlowupSetRejectedBeforeCompile) {
  // The acceptance-criteria scenario: a crafted blow-up set must be caught
  // by the analyzer with a stable code, using only static analysis.
  dpi::EngineSpec spec = seed_spec(64, 64, 4);
  spec.regex_patterns.push_back(
      {".{16}a.{16}b.{16}c.{16}d.{16}e", 3, 9000, false});
  AnalysisOptions options;
  options.budget.max_regex_dfa_states = 512;
  options.dfa_state_cap = 1024;
  const PatternSetReport report = analyze(spec, options);
  EXPECT_FALSE(report.admissible());
  EXPECT_TRUE(has_code(report.violations, "regex-dfa-blowup"));
}

}  // namespace
}  // namespace dpisvc
