// Unit tests for the common substrate: bytes, rng, checksums, timing.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace dpisvc {
namespace {

// --- bytes -----------------------------------------------------------------

TEST(Bytes, TextRoundTrip) {
  const Bytes b = to_bytes("hello\0world");
  EXPECT_EQ(as_text(b), "hello");  // string_view literal stops at NUL
  const Bytes b2 = to_bytes(std::string_view("a\0b", 3));
  EXPECT_EQ(b2.size(), 3u);
  EXPECT_EQ(to_string(b2).size(), 3u);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  EXPECT_EQ(to_hex(b), "deadbeef007f");
  EXPECT_EQ(from_hex("deadbeef007f"), b);
  EXPECT_EQ(from_hex("DEADBEEF007F"), b);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, BigEndianRoundTrip) {
  Bytes out;
  put_be(out, 0x0102030405060708ULL, 8);
  put_be(out, 0xBEEF, 2);
  put_be(out, 0xABCDEF, 3);
  EXPECT_EQ(out.size(), 13u);
  EXPECT_EQ(get_be(out, 0, 8), 0x0102030405060708ULL);
  EXPECT_EQ(get_be(out, 8, 2), 0xBEEFu);
  EXPECT_EQ(get_be(out, 10, 3), 0xABCDEFu);
}

TEST(Bytes, GetBeOutOfRangeThrows) {
  const Bytes b{1, 2, 3};
  EXPECT_THROW(get_be(b, 2, 2), std::out_of_range);
  EXPECT_THROW(get_be(b, 3, 1), std::out_of_range);
  EXPECT_NO_THROW(get_be(b, 2, 1));
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(5, 4), std::invalid_argument);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(13);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(1);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(weights), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- checksum -----------------------------------------------------------------

TEST(Checksum, InternetChecksumKnownVector) {
  // Classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2.
  const Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0xddf2);
}

TEST(Checksum, InternetChecksumOddLength) {
  const Bytes data{0x01};
  EXPECT_EQ(internet_checksum(data), 0x0100);
}

TEST(Checksum, ComplementVerifies) {
  // Header with embedded complement folds to 0xFFFF.
  Bytes header{0x45, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06,
               0x00, 0x00, 0x0A, 0x00, 0x00, 0x01, 0x0A, 0x00, 0x00, 0x02};
  const std::uint16_t c = static_cast<std::uint16_t>(~internet_checksum(header));
  header[10] = static_cast<std::uint8_t>(c >> 8);
  header[11] = static_cast<std::uint8_t>(c & 0xFF);
  EXPECT_EQ(internet_checksum(header), 0xFFFF);
}

TEST(Checksum, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE reference value).
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Checksum, Crc32Empty) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Checksum, Fnv1aKnownVector) {
  // FNV-1a 64-bit of "a" = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a(to_bytes("a")), 0xaf63dc4c8601ec8cULL);
  // Empty input returns the offset basis.
  EXPECT_EQ(fnv1a({}), 0xCBF29CE484222325ULL);
}

// --- timer ----------------------------------------------------------------------

TEST(Timer, ElapsedIsMonotonic) {
  Stopwatch sw;
  const double t1 = sw.elapsed_seconds();
  const double t2 = sw.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Timer, ToMbps) {
  EXPECT_DOUBLE_EQ(to_mbps(1'000'000, 8.0), 1.0);  // 1MB over 8s = 1 Mbps
  EXPECT_DOUBLE_EQ(to_mbps(125'000'000, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(to_mbps(1000, 0.0), 0.0);  // degenerate duration
}

}  // namespace
}  // namespace dpisvc
