// Positive control for the thread-safety compile-fail suite: correctly
// annotated code that MUST compile under -Werror=thread-safety. If this file
// fails, the negative cases below are failing for the wrong reason (broken
// include path or flags), not because the analysis caught them.
#include "common/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment() {
    const dpisvc::MutexLock lock(mu_);
    ++value_;
  }

  int value() const {
    const dpisvc::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable dpisvc::Mutex mu_;
  int value_ DPISVC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
