// Negative case: reading and writing a DPISVC_GUARDED_BY field without
// holding its mutex. Clang -Werror=thread-safety MUST reject this file; the
// ctest registers it with WILL_FAIL.
#include "common/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment() {
    ++value_;  // expected error: writing variable requires holding mutex
  }

  int value() const {
    return value_;  // expected error: reading variable requires holding mutex
  }

 private:
  mutable dpisvc::Mutex mu_;
  int value_ DPISVC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value();
}
