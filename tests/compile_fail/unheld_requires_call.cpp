// Negative case: calling a DPISVC_REQUIRES(mu) function without holding the
// mutex — the ScanPool::try_push_locked misuse shape (an unserialized
// producer-side ring push). Clang -Werror=thread-safety MUST reject this
// file; the ctest registers it with WILL_FAIL.
#include "common/thread_safety.hpp"

namespace {

class Queue {
 public:
  bool submit(int v) {
    return push_locked(v);  // expected error: requires holding submit_mu_
  }

 private:
  bool push_locked(int v) DPISVC_REQUIRES(submit_mu_) {
    pending_ = v;
    return true;
  }

  dpisvc::Mutex submit_mu_;
  int pending_ DPISVC_GUARDED_BY(submit_mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  return queue.submit(1) ? 0 : 1;
}
