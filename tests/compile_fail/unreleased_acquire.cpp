// Negative case: acquiring a capability and returning without releasing it.
// Clang -Werror=thread-safety MUST reject this file ("mutex is still held at
// the end of function"); the ctest registers it with WILL_FAIL.
#include "common/thread_safety.hpp"

namespace {

dpisvc::Mutex mu;
int value DPISVC_GUARDED_BY(mu) = 0;

int take_and_leak() {
  mu.lock();
  return value;  // expected error: mu still held at end of function
}

}  // namespace

int main() { return take_and_leak(); }
