// Negative case: holding mutex B while touching a field guarded by mutex A.
// A lock IS held, so a lock-counting heuristic would pass this — only real
// capability analysis connects the field to its specific guard. Clang
// -Werror=thread-safety MUST reject this file; the ctest registers it with
// WILL_FAIL.
#include "common/thread_safety.hpp"

namespace {

class TwoLocks {
 public:
  void update() {
    const dpisvc::MutexLock lock(other_mu_);
    ++value_;  // expected error: value_ is guarded by mu_, not other_mu_
  }

 private:
  dpisvc::Mutex mu_;
  dpisvc::Mutex other_mu_;
  int value_ DPISVC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.update();
  return 0;
}
