// Tests for the DEFLATE/zlib/gzip substrate: block types, Huffman decode,
// LZ77 back-references, wrapper framing, checksums, malformed-input
// rejection — with randomized round-trip properties.
#include <gtest/gtest.h>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "compress/deflate.hpp"
#include "compress/inflate.hpp"

namespace dpisvc::compress {
namespace {

Bytes bytes_of(std::string_view text) { return to_bytes(text); }

std::string text_of(const Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// --- stored blocks ---------------------------------------------------------------

TEST(Deflate, StoredRoundTrip) {
  const Bytes original = bytes_of("stored block payload, uncompressed");
  const Bytes packed = deflate(original, DeflateStrategy::kStored);
  EXPECT_EQ(inflate(packed), original);
}

TEST(Deflate, EmptyInputRoundTrip) {
  for (auto strategy : {DeflateStrategy::kStored,
                        DeflateStrategy::kFixedHuffman}) {
    const Bytes packed = deflate({}, strategy);
    EXPECT_TRUE(inflate(packed).empty());
  }
}

TEST(Deflate, StoredMultiBlockForLargeInput) {
  // > 65535 bytes forces multiple stored blocks.
  Bytes original(150000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i * 31);
  }
  const Bytes packed = deflate(original, DeflateStrategy::kStored);
  EXPECT_EQ(inflate(packed), original);
}

// --- fixed Huffman ---------------------------------------------------------------

TEST(Deflate, FixedHuffmanLiteralsRoundTrip) {
  const Bytes original = bytes_of("abcdefghij0123456789!@#$%");
  const Bytes packed = deflate(original, DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(inflate(packed), original);
}

TEST(Deflate, FixedHuffmanAllByteValues) {
  Bytes original(256);
  for (int i = 0; i < 256; ++i) original[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  const Bytes packed = deflate(original, DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(inflate(packed), original);
}

TEST(Deflate, BackReferencesCompressRepetition) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "the same phrase again and again. ";
  const Bytes original = bytes_of(text);
  const Bytes packed = deflate(original, DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(inflate(packed), original);
  // Repetitive text must actually compress (LZ77 matches fired).
  EXPECT_LT(packed.size(), original.size() / 4);
}

TEST(Deflate, MaxLengthMatches) {
  // 10000 identical bytes: exercises 258-byte matches and distance 1.
  Bytes original(10000, 0x41);
  const Bytes packed = deflate(original, DeflateStrategy::kFixedHuffman);
  EXPECT_EQ(inflate(packed), original);
  EXPECT_LT(packed.size(), 200u);
}

// --- dynamic Huffman (hand-built block) ----------------------------------------

/// Builds a dynamic-Huffman DEFLATE block by hand, covering the HLIT/HDIST/
/// HCLEN header, the code-length code, and repeat codes 17/18.
Bytes hand_built_dynamic_block() {
  // Alphabet: literals 'a'(97) and 'b'(98), end-of-block 256; no distance
  // codes used (HDIST=1, the single distance code gets length 1 but is
  // never referenced). Literal code lengths: 'a'->1, 'b'->2, 256->2.
  // Code-length code must encode: 97 zeros (via 18-codes), then 1, 2,
  // 157 zeros, 2, then the distance table: 1.
  // Choose code-length-code lengths: {0:2, 1:2, 2:2, 18:2} -> canonical
  // codes 0:00, 1:01, 2:10, 18:11.
  struct Bits {
    Bytes out;
    std::uint64_t hold = 0;
    int count = 0;
    void add(std::uint32_t value, int bits) {
      hold |= static_cast<std::uint64_t>(value) << count;
      count += bits;
      while (count >= 8) {
        out.push_back(static_cast<std::uint8_t>(hold & 0xFF));
        hold >>= 8;
        count -= 8;
      }
    }
    void flush() {
      if (count > 0) out.push_back(static_cast<std::uint8_t>(hold & 0xFF));
      hold = 0;
      count = 0;
    }
  } w;

  w.add(1, 1);  // BFINAL
  w.add(2, 2);  // dynamic
  w.add(257 - 257, 5);  // HLIT = 257 (literals 0..256)
  w.add(1 - 1, 5);      // HDIST = 1
  w.add(19 - 4, 4);     // HCLEN = 19: all code-length-code lengths present
  // Code-length-code lengths in the permuted order
  // {16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1,15}:
  const int permuted[19] = {0, 0, 2, 2, 0, 0, 0, 0, 0, 0,
                            0, 0, 0, 0, 0, 2, 0, 2, 0};
  for (int len : permuted) w.add(static_cast<std::uint32_t>(len), 3);
  // Canonical code-length code over symbols with length 2: {0,1,2,18} ->
  // 0:00, 1:01, 2:10, 18:11 (codes written MSB-first).
  auto cl = [&](int symbol) {
    switch (symbol) {
      case 0: w.add(0b00, 2); break;
      case 1: w.add(0b10, 2); break;  // 01 reversed
      case 2: w.add(0b01, 2); break;  // 10 reversed
      default: w.add(0b11, 2); break; // 18
    }
  };
  // Literal lengths: 97 zeros = 18(repeat 86: 86-11=75) + 18(repeat 11: 0).
  cl(18);
  w.add(86 - 11, 7);
  cl(18);
  w.add(11 - 11, 7);
  // 'a' -> 1, 'b' -> 2.
  cl(1);
  cl(2);
  // 157 zeros to reach symbol 256: 18(repeat 138) + 18(repeat 19).
  cl(18);
  w.add(138 - 11, 7);
  cl(18);
  w.add(19 - 11, 7);
  // 256 -> 2.
  cl(2);
  // Distance table (1 entry): length 1.
  cl(1);
  // Literal canonical codes: 'a'(len 1) -> 0; 'b'(len 2) -> 10; 256 -> 11.
  // Payload: "abba" + EOB.
  w.add(0b0, 1);   // a
  w.add(0b01, 2);  // b (10 reversed)
  w.add(0b01, 2);  // b
  w.add(0b0, 1);   // a
  w.add(0b11, 2);  // 256
  w.flush();
  return w.out;
}

TEST(Inflate, HandBuiltDynamicBlock) {
  const Bytes block = hand_built_dynamic_block();
  EXPECT_EQ(text_of(inflate(block)), "abba");
}

// --- malformed input -------------------------------------------------------------

TEST(Inflate, RejectsMalformed) {
  EXPECT_THROW(inflate({}), InflateError);  // empty stream
  // Reserved block type 3.
  EXPECT_THROW(inflate(Bytes{0x07}), InflateError);
  // Stored block with LEN/NLEN mismatch.
  EXPECT_THROW(inflate(Bytes{0x01, 0x05, 0x00, 0x12, 0x34}), InflateError);
  // Truncated stored data.
  EXPECT_THROW(inflate(Bytes{0x01, 0x05, 0x00, 0xFA, 0xFF, 'a'}),
               InflateError);
  // Truncated fixed-Huffman stream.
  Bytes truncated = deflate(bytes_of("hello hello hello"),
                            DeflateStrategy::kFixedHuffman);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(inflate(truncated), InflateError);
}

TEST(Inflate, OutputLimitEnforced) {
  Bytes bomb_input(20000, 0x41);
  const Bytes packed = deflate(bomb_input, DeflateStrategy::kFixedHuffman);
  InflateLimits limits;
  limits.max_output = 1024;
  EXPECT_THROW(inflate(packed, limits), InflateError);
}

// --- checksums ------------------------------------------------------------------

TEST(Adler32, KnownVectors) {
  EXPECT_EQ(adler32({}), 1u);
  // adler32("Wikipedia") = 0x11E60398 (well-known example).
  EXPECT_EQ(adler32(bytes_of("Wikipedia")), 0x11E60398u);
}

// --- zlib wrapper -----------------------------------------------------------------

TEST(Zlib, RoundTrip) {
  const Bytes original = bytes_of("zlib framed content, with repetition "
                                  "repetition repetition");
  const Bytes packed = zlib_compress(original);
  EXPECT_TRUE(looks_like_zlib(packed));
  EXPECT_EQ(zlib_decompress(packed), original);
}

TEST(Zlib, DetectsCorruption) {
  Bytes packed = zlib_compress(bytes_of("checksummed content"));
  // Flip a payload byte: Adler-32 must catch it (or the stream breaks).
  packed[packed.size() / 2] ^= 0x01;
  EXPECT_THROW(zlib_decompress(packed), InflateError);
  // Bad header.
  EXPECT_THROW(zlib_decompress(Bytes{0x79, 0x9C, 0x00}), InflateError);
}

// --- gzip wrapper -----------------------------------------------------------------

TEST(Gzip, RoundTrip) {
  const Bytes original = bytes_of(
      "<html><body>gzip is what HTTP actually sends</body></html>");
  const Bytes packed = gzip_compress(original);
  EXPECT_TRUE(looks_like_gzip(packed));
  EXPECT_FALSE(looks_like_gzip(original));
  EXPECT_EQ(gzip_decompress(packed), original);
}

TEST(Gzip, HeaderWithOptionalFields) {
  // Construct a member with FNAME + FEXTRA around our deflate stream.
  const Bytes original = bytes_of("payload behind optional header fields");
  const Bytes body = deflate(original);
  Bytes member = {0x1F, 0x8B, 8, 0x0C /*FEXTRA|FNAME*/, 0, 0, 0, 0, 0, 0xFF};
  // FEXTRA: xlen=4 + 4 bytes.
  member.push_back(4);
  member.push_back(0);
  for (std::uint8_t b : {1, 2, 3, 4}) member.push_back(b);
  // FNAME: zero-terminated.
  for (char c : std::string("file.txt")) {
    member.push_back(static_cast<std::uint8_t>(c));
  }
  member.push_back(0);
  member.insert(member.end(), body.begin(), body.end());
  const std::uint32_t checksum = crc32(original);
  const auto size = static_cast<std::uint32_t>(original.size());
  for (std::uint32_t v : {checksum, size}) {
    for (int i = 0; i < 4; ++i) {
      member.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    }
  }
  EXPECT_EQ(gzip_decompress(member), original);
}

TEST(Gzip, RejectsCorruption) {
  const Bytes packed = gzip_compress(bytes_of("content"));
  // Bad magic.
  Bytes bad = packed;
  bad[0] = 0x1E;
  EXPECT_THROW(gzip_decompress(bad), InflateError);
  // CRC mismatch.
  bad = packed;
  bad[bad.size() - 5] ^= 0xFF;
  EXPECT_THROW(gzip_decompress(bad), InflateError);
  // ISIZE mismatch.
  bad = packed;
  bad[bad.size() - 1] ^= 0xFF;
  EXPECT_THROW(gzip_decompress(bad), InflateError);
  // Truncation.
  bad.assign(packed.begin(), packed.begin() + 12);
  EXPECT_THROW(gzip_decompress(bad), InflateError);
}

// --- randomized round-trip property ------------------------------------------------

class CompressRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CompressRoundTrip, RandomDataAllStrategiesAllWrappers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  for (int iter = 0; iter < 20; ++iter) {
    // Mix of compressible (small alphabet) and incompressible data.
    const std::size_t length = rng.index(5000);
    const bool compressible = rng.bernoulli(0.5);
    Bytes original(length);
    for (std::size_t i = 0; i < length; ++i) {
      original[i] = compressible
                        ? static_cast<std::uint8_t>('a' + rng.index(5))
                        : static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    for (auto strategy : {DeflateStrategy::kStored,
                          DeflateStrategy::kFixedHuffman}) {
      EXPECT_EQ(inflate(deflate(original, strategy)), original);
      EXPECT_EQ(zlib_decompress(zlib_compress(original, strategy)), original);
      EXPECT_EQ(gzip_decompress(gzip_compress(original, strategy)), original);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressRoundTrip, ::testing::Range(0, 6));

}  // namespace
}  // namespace dpisvc::compress
