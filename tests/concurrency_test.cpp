// Concurrency tests: a compiled dpi::Engine is immutable and shared by all
// service instances via shared_ptr<const Engine> — concurrent scans from
// multiple threads must be safe and give identical results. This is what
// lets the controller run many instances off one compile (§4.1/§5.1) and
// what the multicore note in §2.2 relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dpi/engine.hpp"
#include "service/instance.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc {
namespace {

std::shared_ptr<const dpi::Engine> shared_engine() {
  dpi::EngineSpec spec;
  for (dpi::MiddleboxId id = 1; id <= 3; ++id) {
    dpi::MiddleboxProfile p;
    p.id = id;
    p.name = "m" + std::to_string(id);
    spec.middleboxes.push_back(p);
  }
  const auto patterns =
      workload::generate_patterns(workload::snort_like(300, 11));
  dpi::PatternId pid = 0;
  for (const auto& pattern : patterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        pattern, static_cast<dpi::MiddleboxId>(1 + pid % 3), pid});
    ++pid;
  }
  spec.chains[1] = {1, 2, 3};
  spec.chains[2] = {2};
  return dpi::Engine::compile(spec);
}

TEST(Concurrency, SharedEngineScansFromManyThreads) {
  auto engine = shared_engine();
  workload::TrafficConfig config;
  config.num_packets = 300;
  config.planted_match_rate = 0.2;
  const auto patterns =
      workload::generate_patterns(workload::snort_like(300, 11));
  config.planted_patterns.assign(patterns.begin(), patterns.begin() + 16);
  const auto trace = workload::generate_http_trace(config);

  // Single-threaded reference.
  std::uint64_t expected_hits = 0;
  for (const auto& p : trace) {
    expected_hits += engine->scan_packet(1, p.payload).raw_hits;
  }

  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> total_hits{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t hits = 0;
      for (int round = 0; round < 3; ++round) {
        for (const auto& p : trace) {
          const auto chain = static_cast<dpi::ChainId>(1 + (t % 2));
          const auto result = engine->scan_packet(chain, p.payload);
          if (chain == 1) hits += result.raw_hits;
        }
      }
      // Threads scanning chain 1 must each see exactly the reference total.
      if (t % 2 == 0 && hits != expected_hits * 3) {
        mismatch = true;
      }
      total_hits += hits;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_GT(total_hits.load(), 0u);
}

TEST(Concurrency, IndependentInstancesShareOneEngine) {
  auto engine = shared_engine();
  constexpr int kInstances = 6;
  std::vector<std::unique_ptr<service::DpiInstance>> instances;
  for (int i = 0; i < kInstances; ++i) {
    instances.push_back(
        std::make_unique<service::DpiInstance>("i" + std::to_string(i)));
    instances.back()->load_engine(engine, 1);
  }
  workload::TrafficConfig config;
  config.num_packets = 200;
  const auto trace = workload::generate_http_trace(config);

  std::vector<std::thread> threads;
  for (int i = 0; i < kInstances; ++i) {
    threads.emplace_back([&, i] {
      for (const auto& p : trace) {
        (void)instances[static_cast<std::size_t>(i)]->scan(1, p.tuple,
                                                           p.payload);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& inst : instances) {
    EXPECT_EQ(inst->telemetry().packets, trace.size());
  }
  // All instances share one engine object: each pins one control-plane
  // snapshot plus one per data-plane shard — never a copy of the engine.
  const long refs_per_instance =
      1 + static_cast<long>(instances[0]->num_shards());
  EXPECT_EQ(engine.use_count(), kInstances * refs_per_instance + 1);
}

}  // namespace
}  // namespace dpisvc
