// Tests for the virtual DPI engine (§5): combined-set scanning, bitmaps,
// stopping conditions, stateful flows, regex pre-filtering — including the
// central correctness property: scanning once against the combined pattern
// sets is equivalent to scanning separately per middlebox.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "dpi/engine.hpp"

namespace dpisvc::dpi {
namespace {

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

/// Flattens a scan result to comparable (middlebox, pattern, position) sets,
/// expanding run-length entries.
std::set<std::tuple<MiddleboxId, PatternId, std::uint32_t>> flatten(
    const ScanResult& result) {
  std::set<std::tuple<MiddleboxId, PatternId, std::uint32_t>> out;
  for (const auto& section : result.matches) {
    for (const auto& e : section.entries) {
      for (std::uint32_t i = 0; i < e.run_length; ++i) {
        out.emplace(section.middlebox, e.pattern_id, e.position + i);
      }
    }
  }
  return out;
}

EngineSpec two_middlebox_spec() {
  EngineSpec spec;
  spec.middleboxes = {
      MiddleboxProfile{1, "ids", false, true, kNoStopCondition},
      MiddleboxProfile{2, "av", false, false, kNoStopCondition},
  };
  // Paper's Figure 4/7 sets.
  const char* set1[] = {"E", "BE", "BD", "BCD", "BCAA", "CDBCAB"};
  const char* set2[] = {"EDAE", "BE", "CDBA", "CBD"};
  PatternId id = 0;
  for (const char* p : set1) {
    spec.exact_patterns.push_back(ExactPatternSpec{p, 1, id++});
  }
  id = 0;
  for (const char* p : set2) {
    spec.exact_patterns.push_back(ExactPatternSpec{p, 2, id++});
  }
  spec.chains[10] = {1, 2};
  spec.chains[11] = {1};
  spec.chains[12] = {2};
  return spec;
}

// --- basic combined scanning -------------------------------------------------

TEST(Engine, ReportsPerMiddleboxPatternIds) {
  auto engine = Engine::compile(two_middlebox_spec());
  const auto result = engine->scan_packet(10, view("CDBCABE"));
  const auto found = flatten(result);
  // CDBCAB -> mbox1 pattern 5 at 6; BE -> mbox1 pattern 1 AND mbox2
  // pattern 1 at 7; E -> mbox1 pattern 0 at 7.
  EXPECT_TRUE(found.count({1, 5, 6}));
  EXPECT_TRUE(found.count({1, 1, 7}));
  EXPECT_TRUE(found.count({2, 1, 7}));
  EXPECT_TRUE(found.count({1, 0, 7}));
  EXPECT_EQ(found.size(), 4u);
}

TEST(Engine, ChainSelectsActiveMiddleboxes) {
  auto engine = Engine::compile(two_middlebox_spec());
  // Chain 11: only middlebox 1. The shared pattern BE must be reported only
  // with middlebox 1's id.
  const auto found = flatten(engine->scan_packet(11, view("CDBCABE")));
  for (const auto& [mbox, pattern, pos] : found) {
    EXPECT_EQ(mbox, 1);
  }
  EXPECT_TRUE(found.count({1, 1, 7}));
  // Chain 12: only middlebox 2.
  const auto found2 = flatten(engine->scan_packet(12, view("CDBCABE")));
  EXPECT_EQ(found2.size(), 1u);
  EXPECT_TRUE(found2.count({2, 1, 7}));
}

TEST(Engine, UnknownChainThrows) {
  auto engine = Engine::compile(two_middlebox_spec());
  EXPECT_THROW(engine->scan_packet(99, view("x")), std::invalid_argument);
}

TEST(Engine, NoMatchesOnCleanPayload) {
  auto engine = Engine::compile(two_middlebox_spec());
  const auto result = engine->scan_packet(10, view("xxxxyyyyzzzz"));
  EXPECT_FALSE(result.has_matches());
  EXPECT_EQ(result.bytes_scanned, 12u);
}

TEST(Engine, SuffixPatternAcrossMiddleboxes) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "a"}, MiddleboxProfile{2, "b"}};
  spec.exact_patterns = {
      ExactPatternSpec{"ABCDEF", 1, 0},
      ExactPatternSpec{"DEF", 2, 0},
  };
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);
  const auto found = flatten(engine->scan_packet(1, view("xABCDEFx")));
  // One traversal of ABCDEF's accepting state must report both middleboxes.
  EXPECT_TRUE(found.count({1, 0, 7}));
  EXPECT_TRUE(found.count({2, 0, 7}));
}

TEST(Engine, RunCompressionForSelfRepeatingPatterns) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "a"}};
  spec.exact_patterns = {ExactPatternSpec{"aa", 1, 3}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto result = engine->scan_packet(1, view("aaaaa"));
  ASSERT_EQ(result.matches.size(), 1u);
  ASSERT_EQ(result.matches[0].entries.size(), 1u);
  const auto& e = result.matches[0].entries[0];
  EXPECT_EQ(e.pattern_id, 3);
  EXPECT_EQ(e.position, 2u);
  EXPECT_EQ(e.run_length, 4u);  // ends at 2,3,4,5
}

// --- the central equivalence property -------------------------------------------

// Scanning once with the combined engine and filtering by the active bitmap
// must equal scanning separately with one single-middlebox engine each.
TEST(Engine, CombinedScanEquivalentToSeparateScans) {
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 40; ++iter) {
    // Random pattern sets for 3 middleboxes over a small alphabet.
    EngineSpec combined;
    std::map<MiddleboxId, EngineSpec> separate;
    for (MiddleboxId id = 1; id <= 3; ++id) {
      combined.middleboxes.push_back(MiddleboxProfile{id, "m"});
      separate[id].middleboxes.push_back(MiddleboxProfile{id, "m"});
      separate[id].chains[1] = {id};
      const std::size_t n = 1 + rng.index(6);
      for (PatternId pid = 0; pid < n; ++pid) {
        std::string p;
        const std::size_t len = 1 + rng.index(5);
        for (std::size_t j = 0; j < len; ++j) {
          p.push_back(static_cast<char>('a' + rng.index(3)));
        }
        combined.exact_patterns.push_back(ExactPatternSpec{p, id, pid});
        separate[id].exact_patterns.push_back(ExactPatternSpec{p, id, pid});
      }
    }
    combined.chains[1] = {1, 2, 3};
    combined.chains[2] = {1, 3};
    combined.chains[3] = {2};

    auto combined_engine = Engine::compile(combined);
    std::map<MiddleboxId, std::shared_ptr<const Engine>> separate_engines;
    for (auto& [id, spec] : separate) {
      separate_engines[id] = Engine::compile(spec);
    }

    std::string text;
    const std::size_t text_len = rng.index(100);
    for (std::size_t j = 0; j < text_len; ++j) {
      text.push_back(static_cast<char>('a' + rng.index(3)));
    }

    const std::map<ChainId, std::vector<MiddleboxId>> chains = {
        {1, {1, 2, 3}}, {2, {1, 3}}, {3, {2}}};
    for (const auto& [chain, members] : chains) {
      const auto combined_found =
          flatten(combined_engine->scan_packet(chain, view(text)));
      std::set<std::tuple<MiddleboxId, PatternId, std::uint32_t>> expected;
      for (MiddleboxId id : members) {
        const auto single =
            flatten(separate_engines[id]->scan_packet(1, view(text)));
        expected.insert(single.begin(), single.end());
      }
      EXPECT_EQ(combined_found, expected)
          << "chain=" << chain << " text=" << text;
    }
  }
}

// --- stateful flows ---------------------------------------------------------------

EngineSpec stateful_spec() {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "ids", /*stateful=*/true, false,
                                       kNoStopCondition}};
  spec.exact_patterns = {ExactPatternSpec{"attackpattern", 1, 0},
                         ExactPatternSpec{"short", 1, 1}};
  spec.chains[1] = {1};
  return spec;
}

TEST(Engine, StatefulScanSpansPacketBoundaries) {
  auto engine = Engine::compile(stateful_spec());
  const std::string part1 = "xxxattackpa";
  const std::string part2 = "tternyyy";
  const auto r1 = engine->scan_packet(1, view(part1));
  EXPECT_FALSE(r1.has_matches());
  ASSERT_TRUE(r1.cursor.valid);
  EXPECT_EQ(r1.cursor.offset, part1.size());
  const auto r2 = engine->scan_packet(1, view(part2), r1.cursor);
  const auto found = flatten(r2);
  // Position is flow-relative: "attackpattern" ends at offset 16.
  EXPECT_TRUE(found.count({1, 0, 16}));
}

TEST(Engine, StatefulEqualsConcatenatedScan) {
  Rng rng(0xFEED);
  auto engine = Engine::compile(stateful_spec());
  for (int iter = 0; iter < 30; ++iter) {
    std::string text;
    const std::size_t len = 1 + rng.index(120);
    for (std::size_t i = 0; i < len; ++i) {
      // Bias toward pattern bytes so matches actually occur.
      const char* soup = "attackpternshor";
      text.push_back(soup[rng.index(15)]);
    }
    if (rng.bernoulli(0.5)) {
      text.insert(rng.index(text.size() + 1), "attackpattern");
    }
    // Whole-scan reference.
    const auto whole = flatten(engine->scan_packet(1, view(text)));
    // Split into 1..4 fragments.
    std::set<std::tuple<MiddleboxId, PatternId, std::uint32_t>> stitched;
    FlowCursor cursor;
    std::size_t at = 0;
    while (at < text.size()) {
      const std::size_t take = 1 + rng.index(text.size() - at);
      const auto r =
          engine->scan_packet(1, view(text.substr(at, take)), cursor);
      const auto part = flatten(r);
      stitched.insert(part.begin(), part.end());
      cursor = r.cursor;
      at += take;
    }
    EXPECT_EQ(stitched, whole) << text;
  }
}

TEST(Engine, StatelessDropsMatchesBeganInPreviousPacket) {
  // One stateful middlebox forces cross-packet state; a stateless middlebox
  // sharing the chain must NOT see a match that straddles the boundary.
  EngineSpec spec;
  spec.middleboxes = {
      MiddleboxProfile{1, "stateful", true, false, kNoStopCondition},
      MiddleboxProfile{2, "stateless", false, false, kNoStopCondition}};
  spec.exact_patterns = {ExactPatternSpec{"abcdef", 1, 0},
                         ExactPatternSpec{"abcdef", 2, 0}};
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);

  const auto r1 = engine->scan_packet(1, view("xxabc"));
  const auto r2 = engine->scan_packet(1, view("defyy"), r1.cursor);
  const auto found = flatten(r2);
  EXPECT_TRUE(found.count({1, 0, 8}));   // stateful: flow offset 8
  for (const auto& [mbox, pattern, pos] : found) {
    EXPECT_NE(mbox, 2);  // stateless must not report the straddling match
  }
}

TEST(Engine, StatelessStillMatchesWithinPacketWhenResumed) {
  EngineSpec spec;
  spec.middleboxes = {
      MiddleboxProfile{1, "stateful", true, false, kNoStopCondition},
      MiddleboxProfile{2, "stateless", false, false, kNoStopCondition}};
  spec.exact_patterns = {ExactPatternSpec{"needle", 2, 7}};
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);
  const auto r1 = engine->scan_packet(1, view("garbage"));
  const auto r2 = engine->scan_packet(1, view("xxneedlexx"), r1.cursor);
  const auto found = flatten(r2);
  // Position is packet-relative for the stateless middlebox.
  EXPECT_TRUE(found.count({2, 7, 8}));
}

// --- stopping conditions ------------------------------------------------------------

TEST(Engine, StopConditionFiltersDeepMatches) {
  EngineSpec spec;
  spec.middleboxes = {
      MiddleboxProfile{1, "header-only", false, false, /*stop=*/10},
      MiddleboxProfile{2, "full", false, false, kNoStopCondition}};
  spec.exact_patterns = {ExactPatternSpec{"evil", 1, 0},
                         ExactPatternSpec{"evil", 2, 0}};
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);
  // "evil" ending at 9 (within mbox1's stop) and at 24 (beyond it).
  const std::string text = "xxxxxevil..........evil.";
  const auto found = flatten(engine->scan_packet(1, view(text)));
  EXPECT_TRUE(found.count({1, 0, 9}));
  EXPECT_TRUE(found.count({2, 0, 9}));
  EXPECT_FALSE(found.count({1, 0, 23}));
  EXPECT_TRUE(found.count({2, 0, 23}));
}

TEST(Engine, ScanTruncatesAtMostConservativeStop) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "a", false, false, 8},
                      MiddleboxProfile{2, "b", false, false, 16}};
  spec.exact_patterns = {ExactPatternSpec{"zzzz", 1, 0},
                         ExactPatternSpec{"zzzz", 2, 0}};
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);
  const std::string text(64, 'a');
  const auto result = engine->scan_packet(1, view(text));
  EXPECT_EQ(result.bytes_scanned, 16u);  // max of the two stop offsets
}

TEST(Engine, StatefulStopAppliesAcrossPackets) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "s", true, false, /*stop=*/10}};
  spec.exact_patterns = {ExactPatternSpec{"mark", 1, 0}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto r1 = engine->scan_packet(1, view("123456"));  // offset now 6
  EXPECT_EQ(r1.bytes_scanned, 6u);
  const auto r2 = engine->scan_packet(1, view("789012345"), r1.cursor);
  EXPECT_EQ(r2.bytes_scanned, 4u);  // only up to flow offset 10
  const auto r3 = engine->scan_packet(1, view("abcdef"), r2.cursor);
  EXPECT_EQ(r3.bytes_scanned, 0u);
}

// --- regex support (§5.3) --------------------------------------------------------------

EngineSpec regex_spec() {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "ids"}};
  spec.regex_patterns = {
      RegexPatternSpec{R"(regular\s*expression\s*\d+)", 1, 100, false}};
  spec.chains[1] = {1};
  return spec;
}

TEST(Engine, RegexMatchedViaAnchors) {
  auto engine = Engine::compile(regex_spec());
  EXPECT_EQ(engine->num_distinct_strings(), 2u);  // "regular", "expression"
  const auto found =
      flatten(engine->scan_packet(1, view("a regular expression 42 here")));
  ASSERT_EQ(found.size(), 1u);
  const auto& [mbox, pattern, pos] = *found.begin();
  EXPECT_EQ(mbox, 1);
  EXPECT_EQ(pattern, 100);
}

TEST(Engine, RegexNotEvaluatedWhenAnchorMissing) {
  auto engine = Engine::compile(regex_spec());
  // "regular" present but "expression" absent: no anchors-complete, and the
  // regex itself would not match anyway.
  const auto r = engine->scan_packet(1, view("regular stuff 42"));
  EXPECT_FALSE(r.has_matches());
}

TEST(Engine, AnchorsPresentButRegexFails) {
  auto engine = Engine::compile(regex_spec());
  // Both anchors present but no digits: anchors fire, PCRE-equivalent runs
  // and correctly reports nothing.
  const auto r =
      engine->scan_packet(1, view("expression before regular, no digits"));
  EXPECT_FALSE(r.has_matches());
}

TEST(Engine, AnchorlessRegexAlwaysEvaluated) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "ids"}};
  spec.regex_patterns = {RegexPatternSpec{R"(\d{5})", 1, 3, false}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto found = flatten(engine->scan_packet(1, view("zip=90210!")));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found.count({1, 3, 9}));  // "90210" ends at offset 9
}

TEST(Engine, SharedAnchorBetweenMiddleboxes) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "a"}, MiddleboxProfile{2, "b"}};
  spec.regex_patterns = {
      RegexPatternSpec{R"(attack\d)", 1, 0, false},
      RegexPatternSpec{R"(attack[a-z])", 2, 0, false},
  };
  spec.chains[1] = {1, 2};
  spec.chains[2] = {2};
  auto engine = Engine::compile(spec);
  EXPECT_EQ(engine->num_distinct_strings(), 1u);  // shared anchor "attack"
  const auto both = flatten(engine->scan_packet(1, view("xxattack7attackz")));
  EXPECT_TRUE(both.count({1, 0, 9}));
  EXPECT_TRUE(both.count({2, 0, 16}));
  const auto only2 = flatten(engine->scan_packet(2, view("xxattack7attackz")));
  EXPECT_EQ(only2.size(), 1u);
  EXPECT_TRUE(only2.count({2, 0, 16}));
}

TEST(Engine, MixedExactAndRegex) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "ids"}};
  spec.exact_patterns = {ExactPatternSpec{"exactmatch", 1, 0}};
  spec.regex_patterns = {RegexPatternSpec{R"(rx\d+rx)", 1, 1, false}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto found =
      flatten(engine->scan_packet(1, view("exactmatch and rx123rx")));
  EXPECT_TRUE(found.count({1, 0, 10}));
  EXPECT_EQ(found.size(), 2u);
}

// --- compressed engine configuration ---------------------------------------------------

TEST(Engine, CompressedAutomatonProducesSameResults) {
  const EngineSpec spec = two_middlebox_spec();
  auto full = Engine::compile(spec);
  EngineConfig config;
  config.use_compressed_automaton = true;
  auto compressed = Engine::compile(spec, config);
  EXPECT_TRUE(compressed->uses_compressed_automaton());
  EXPECT_FALSE(full->uses_compressed_automaton());
  const char* inputs[] = {"CDBCABE", "EDAEBD", "zzz", "BCAACBD"};
  for (const char* input : inputs) {
    EXPECT_EQ(flatten(full->scan_packet(10, view(input))),
              flatten(compressed->scan_packet(10, view(input))))
        << input;
  }
  EXPECT_LT(compressed->memory_bytes(), full->memory_bytes());
}

// --- compile-time validation -------------------------------------------------------------

TEST(Engine, CompileRejectsBadSpecs) {
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{0, "bad"}};
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{65, "bad"}};
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{1, "a"}, MiddleboxProfile{1, "b"}};
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{1, "a"}};
    spec.exact_patterns = {ExactPatternSpec{"x", 2, 0}};  // unknown mbox
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{1, "a"}};
    spec.exact_patterns = {ExactPatternSpec{"", 1, 0}};  // empty pattern
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{1, "a"}};
    spec.regex_patterns = {RegexPatternSpec{"(", 1, 0, false}};
    EXPECT_THROW(Engine::compile(spec), regex::SyntaxError);
  }
  {
    EngineSpec spec;
    spec.middleboxes = {MiddleboxProfile{1, "a"}};
    spec.chains[1] = {1, 2};  // unknown chain member
    EXPECT_THROW(Engine::compile(spec), std::invalid_argument);
  }
}

TEST(Engine, EmptyPatternSetEngineScansCleanly) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "a"}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto r = engine->scan_packet(1, view("anything at all"));
  EXPECT_FALSE(r.has_matches());
}

TEST(Engine, IntrospectionCounters) {
  auto engine = Engine::compile(two_middlebox_spec());
  EXPECT_EQ(engine->num_exact_patterns(), 10u);
  EXPECT_EQ(engine->num_distinct_strings(), 9u);  // BE shared
  EXPECT_EQ(engine->num_regex_patterns(), 0u);
  EXPECT_GT(engine->memory_bytes(), 0u);
  EXPECT_TRUE(engine->chain_known(10));
  EXPECT_FALSE(engine->chain_known(42));
  EXPECT_EQ(engine->chain_bitmap(10), 0b11u);
  ASSERT_NE(engine->find_middlebox(1), nullptr);
  EXPECT_EQ(engine->find_middlebox(1)->name, "ids");
  EXPECT_EQ(engine->find_middlebox(42), nullptr);
}

TEST(Engine, ScanPacketForExplicitBitmap) {
  auto engine = Engine::compile(two_middlebox_spec());
  const auto found =
      flatten(engine->scan_packet_for(bitmap_of(2), view("CDBCABE")));
  EXPECT_EQ(found.size(), 1u);
  EXPECT_TRUE(found.count({2, 1, 7}));
}

// --- stop-condition boundary convention --------------------------------------
//
// Pin the documented convention (MiddleboxProfile::stop_offset): a match is
// reported iff its end position (1-based count of its last byte) is <= the
// stop offset. At the boundary: reported. One before: reported. One past:
// filtered.

TEST(Engine, StatelessStopBoundaryInclusive) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "hdr", false, false, /*stop=*/10}};
  spec.exact_patterns = {ExactPatternSpec{"evil", 1, 0}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  // End exactly at the stop offset: reported.
  EXPECT_TRUE(flatten(engine->scan_packet(1, view("xxxxxxevil..")))
                  .count({1, 0, 10}));
  // End one byte before the stop offset: reported.
  EXPECT_TRUE(flatten(engine->scan_packet(1, view("xxxxxevil...")))
                  .count({1, 0, 9}));
  // End one byte past the stop offset: filtered.
  EXPECT_TRUE(flatten(engine->scan_packet(1, view("xxxxxxxevil."))).empty());
}

TEST(Engine, ResumedStatefulStopBoundaryInclusive) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "s", true, false, /*stop=*/10}};
  spec.exact_patterns = {ExactPatternSpec{"mark", 1, 0}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  // Flow-relative end positions: "mark" straddles the packet boundary.
  {
    // Ends at flow position 10 == stop: reported.
    const auto r1 = engine->scan_packet(1, view("xxxxxxma"));
    const auto found = flatten(engine->scan_packet(1, view("rk"), r1.cursor));
    EXPECT_TRUE(found.count({1, 0, 10}));
  }
  {
    // Ends at flow position 9: reported.
    const auto r1 = engine->scan_packet(1, view("xxxxxma"));
    const auto found = flatten(engine->scan_packet(1, view("rk"), r1.cursor));
    EXPECT_TRUE(found.count({1, 0, 9}));
  }
  {
    // Ends at flow position 11: filtered (and the scan is cut at 10).
    const auto r1 = engine->scan_packet(1, view("xxxxxxxma"));
    const auto r2 = engine->scan_packet(1, view("rk"), r1.cursor);
    EXPECT_TRUE(flatten(r2).empty());
  }
}

TEST(Engine, RegexStopBoundaryInclusive) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "re", false, false, /*stop=*/10}};
  spec.regex_patterns = {RegexPatternSpec{R"(evil\d)", 1, 7, false}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  // Regex match "evil5" ending exactly at the stop offset: reported.
  EXPECT_TRUE(
      flatten(engine->scan_packet(1, view("xxxxxevil5..."))).count({1, 7, 10}));
  // Ending one byte past the stop offset: filtered.
  EXPECT_TRUE(flatten(engine->scan_packet(1, view("xxxxxxevil5.."))).empty());
}

TEST(Engine, MixedChainStatefulStopDoesNotCutStatelessDepth) {
  // Regression: on a chain with both a bounded stateless and a bounded
  // stateful member, the scan clamp used to take only the flow-relative
  // stateful remainder — resumed packets were cut short of the stateless
  // members' per-packet depth and their in-depth matches silently vanished.
  EngineSpec spec;
  spec.middleboxes = {
      MiddleboxProfile{1, "hdr", false, false, /*stop=*/8},
      MiddleboxProfile{2, "s", true, false, /*stop=*/4},
  };
  spec.exact_patterns = {ExactPatternSpec{"PQRS", 1, 0},
                         ExactPatternSpec{"AAAA", 2, 0}};
  spec.chains[1] = {1, 2};
  auto engine = Engine::compile(spec);
  // Packet 1 consumes the whole stateful depth.
  const auto r1 = engine->scan_packet(1, view("AAAA"));
  EXPECT_TRUE(flatten(r1).count({2, 0, 4}));
  // Packet 2: the stateless member still inspects its per-packet depth of
  // 8 bytes; "PQRS" ends at packet-relative 8 and must be reported.
  const auto r2 = engine->scan_packet(1, view("ZZZZPQRS"), r1.cursor);
  EXPECT_TRUE(flatten(r2).count({1, 0, 8}));
  EXPECT_EQ(r2.bytes_scanned, 8u);
}

// --- anchor hit-set capacity -------------------------------------------------

TEST(Engine, CompileRejectsAnchorsBeyondCapacity) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "re"}};
  spec.regex_patterns = {RegexPatternSpec{R"(aaaa\d)", 1, 0, false},
                         RegexPatternSpec{R"(bbbb\d)", 1, 1, false},
                         RegexPatternSpec{R"(cccc\d)", 1, 2, false}};
  spec.chains[1] = {1};
  EngineConfig config;
  config.max_anchor_bits = 2;  // three distinct anchors exceed this
  EXPECT_THROW(Engine::compile(spec, config), std::invalid_argument);
  // Raising the bound (or the default) accepts the same spec.
  config.max_anchor_bits = 3;
  EXPECT_NO_THROW(Engine::compile(spec, config));
  EXPECT_NO_THROW(Engine::compile(spec));
}


// --- cross-packet regex matching (§5.2 + §5.3) -------------------------------
//
// A regex owned by a stateful middlebox must be reported even when its
// anchors — and the match itself — arrive spread over several packets of
// one flow. The FlowCursor persists both the anchor hit-set and a bounded
// tail of recent payload (EngineConfig::stateful_regex_window) so the
// evaluation can see across the packet boundary.

EngineSpec split_regex_spec() {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "dlp", /*stateful=*/true, false,
                                       kNoStopCondition}};
  spec.regex_patterns = {RegexPatternSpec{R"(expression\d+regular)", 1, 7,
                                          false}};
  spec.chains[1] = {1};
  return spec;
}

TEST(Engine, RegexSplitAcrossPacketsIsReported) {
  auto engine = Engine::compile(split_regex_spec());
  // Anchor "expression" completes in packet 1, anchor "regular" in packet 2;
  // the match itself straddles the boundary.
  const auto r1 = engine->scan_packet(1, view("expression123"));
  EXPECT_FALSE(r1.has_matches());
  const auto r2 = engine->scan_packet(1, view("45regular"), r1.cursor);
  const auto found = flatten(r2);
  ASSERT_EQ(found.size(), 1u);
  // Flow-relative end: "expression12345regular" = 22 bytes.
  EXPECT_TRUE(found.count({1, 7, 22}));
}

TEST(Engine, RegexSplitAcrossThreePackets) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "dlp", true, false,
                                       kNoStopCondition}};
  spec.regex_patterns = {RegexPatternSpec{R"(card=[0-9]+#)", 1, 1, false}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto r1 = engine->scan_packet(1, view("xxcard="));
  const auto r2 = engine->scan_packet(1, view("1234"), r1.cursor);
  EXPECT_FALSE(r2.has_matches());
  const auto r3 = engine->scan_packet(1, view("5678#yy"), r2.cursor);
  const auto found = flatten(r3);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(found.count({1, 1, 16}));  // "...5678#" ends at flow offset 16
}

TEST(Engine, SplitRegexMatchNotReportedTwice) {
  auto engine = Engine::compile(split_regex_spec());
  const auto r1 = engine->scan_packet(1, view("expression123"));
  const auto r2 = engine->scan_packet(1, view("45regular"), r1.cursor);
  EXPECT_TRUE(r2.has_matches());
  // The completed match sits entirely inside the retained window now; a
  // later packet must not resurrect it (matches must end in new bytes).
  const auto r3 = engine->scan_packet(1, view("harmless"), r2.cursor);
  EXPECT_FALSE(r3.has_matches());
}

TEST(Engine, FreshCursorForgetsSplitRegexState) {
  auto engine = Engine::compile(split_regex_spec());
  const auto r1 = engine->scan_packet(1, view("expression123"));
  EXPECT_FALSE(r1.has_matches());
  // Eviction/reset: scanning the second half with a fresh cursor (what a
  // flow-table eviction produces) must not see packet 1's anchors or bytes.
  const auto r2 = engine->scan_packet(1, view("45regular"));
  EXPECT_FALSE(r2.has_matches());
}

TEST(Engine, ZeroWindowDisablesCrossPacketRegex) {
  EngineConfig config;
  config.stateful_regex_window = 0;
  auto engine = Engine::compile(split_regex_spec(), config);
  const auto r1 = engine->scan_packet(1, view("expression123"));
  const auto r2 = engine->scan_packet(1, view("45regular"), r1.cursor);
  // Without the payload tail the split match cannot be reconstructed --
  // the pre-window behavior, still crash-free.
  EXPECT_FALSE(r2.has_matches());
  // Same-packet matches are unaffected.
  const auto whole =
      flatten(engine->scan_packet(1, view("expression12345regular")));
  EXPECT_TRUE(whole.count({1, 7, 22}));
}

TEST(Engine, TinyWindowBoundsMemoryNotCorrectness) {
  EngineConfig config;
  config.stateful_regex_window = 4;  // too small to hold "expression123"
  auto engine = Engine::compile(split_regex_spec(), config);
  const auto r1 = engine->scan_packet(1, view("expression123"));
  const auto r2 = engine->scan_packet(1, view("45regular"), r1.cursor);
  // The bounded tail honestly cannot reconstruct this match; it must simply
  // miss it (no false positive, no crash).
  EXPECT_FALSE(r2.has_matches());
  EXPECT_LE(r2.cursor.regex_window.size(), 4u);
}

TEST(Engine, SplitRegexEquivalentToWholeStream) {
  // Chunked scans over a persistent cursor report the same (pattern, end)
  // set as scanning the whole stream in one packet, for every split point.
  auto engine = Engine::compile(split_regex_spec());
  const std::string text = "zzexpression40regularzz";
  const auto whole = flatten(engine->scan_packet(1, view(text)));
  ASSERT_EQ(whole.size(), 1u);
  for (std::size_t cut = 1; cut + 1 < text.size(); ++cut) {
    const auto r1 = engine->scan_packet(1, view(text.substr(0, cut)));
    const auto r2 = engine->scan_packet(1, view(text.substr(cut)), r1.cursor);
    auto acc = flatten(r1);
    for (const auto& m : flatten(r2)) acc.insert(m);
    EXPECT_EQ(acc, whole) << "split at " << cut;
  }
}

TEST(Engine, StatelessRegexDoesNotCarryAcrossPackets) {
  EngineSpec spec;
  spec.middleboxes = {MiddleboxProfile{1, "ids"}};  // stateless
  spec.regex_patterns = {RegexPatternSpec{R"(expression\d+regular)", 1, 7,
                                          false}};
  spec.chains[1] = {1};
  auto engine = Engine::compile(spec);
  const auto r1 = engine->scan_packet(1, view("expression123"));
  const auto r2 = engine->scan_packet(1, view("45regular"), r1.cursor);
  // Stateless middleboxes scan per packet: no window, no cross-packet match.
  EXPECT_FALSE(r2.has_matches());
  EXPECT_TRUE(r2.cursor.regex_window.empty());
}

TEST(Engine, ScanResultCountsRegexWork) {
  auto engine = Engine::compile(regex_spec());
  const auto hit = engine->scan_packet(1, view("a regular expression 42"));
  EXPECT_GT(hit.anchor_hits_seen, 0u);
  EXPECT_EQ(hit.regexes_evaluated, 1u);
  EXPECT_EQ(hit.regex_matches, 1u);
  const auto miss = engine->scan_packet(1, view("nothing to see"));
  EXPECT_EQ(miss.anchor_hits_seen, 0u);
  EXPECT_EQ(miss.regexes_evaluated, 0u);
  EXPECT_EQ(miss.regex_matches, 0u);
}

TEST(Engine, ExactOnlyEngineSkipsAnchorTracking) {
  // With no regexes compiled in there are no anchor bits; the scan must not
  // pay for (or report) any anchor bookkeeping.
  auto engine = Engine::compile(two_middlebox_spec());
  const auto r = engine->scan_packet(10, view("CDBCABE"));
  EXPECT_TRUE(r.has_matches());
  EXPECT_EQ(r.anchor_hits_seen, 0u);
  EXPECT_EQ(r.regexes_evaluated, 0u);
  EXPECT_EQ(r.regex_matches, 0u);
  EXPECT_TRUE(r.cursor.anchor_hits.empty());
}

}  // namespace
}  // namespace dpisvc::dpi
