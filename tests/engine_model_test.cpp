// Reference-model differential test for the complete §5.2 scan semantics.
//
// A naive, obviously-correct model re-implements the specification from the
// paper's text — continuous flow scanning, the most-conservative stopping
// condition, per-middlebox stop filtering, flow-relative positions for
// stateful middleboxes, packet-relative positions and straddling-match
// suppression for stateless ones — using plain substring search. The engine
// must agree with the model on randomized combinations of:
//   - middlebox profiles (stateful flag x stopping condition),
//   - chains (subsets of middleboxes),
//   - pattern sets over a small alphabet (dense accidental matches),
//   - packet segmentations of a flow.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "dpi/engine.hpp"

namespace dpisvc::dpi {
namespace {

using Found = std::set<std::tuple<MiddleboxId, PatternId, std::uint64_t>>;

struct ModelPattern {
  std::string bytes;
  MiddleboxId middlebox;
  PatternId id;
};

/// The reference model: computes the expected match set for a flow split
/// into packets, per the §5.2 rules.
Found reference_scan(const std::vector<MiddleboxProfile>& profiles,
                     const std::vector<ModelPattern>& patterns,
                     const std::vector<MiddleboxId>& active,
                     const std::vector<std::string>& packets) {
  auto profile_of = [&](MiddleboxId id) -> const MiddleboxProfile& {
    for (const auto& p : profiles) {
      if (p.id == id) return p;
    }
    throw std::logic_error("unknown middlebox in model");
  };

  bool chain_stateful = false;
  std::uint64_t chain_stop = 0;
  for (MiddleboxId id : active) {
    const auto& p = profile_of(id);
    chain_stateful |= p.stateful;
    chain_stop = std::max<std::uint64_t>(chain_stop, p.stop_offset);
  }

  Found found;
  if (chain_stateful) {
    // Continuous scan over the flow. Stop conditions are per middlebox
    // (see MiddleboxProfile::stop_offset): stateful depths are flow-
    // relative, stateless depths renew on every packet — a stateful
    // member's stop must not cut a stateless member's per-packet depth.
    std::string flow;
    for (const auto& p : packets) flow += p;
    // Packet start offsets (within the scanned stream).
    std::vector<std::uint64_t> starts;
    std::uint64_t at = 0;
    for (const auto& p : packets) {
      starts.push_back(at);
      at += p.size();
    }
    for (const ModelPattern& pattern : patterns) {
      const bool is_active =
          std::find(active.begin(), active.end(), pattern.middlebox) !=
          active.end();
      if (!is_active) continue;
      const auto& profile = profile_of(pattern.middlebox);
      for (std::uint64_t end = pattern.bytes.size(); end <= flow.size();
           ++end) {
        const std::uint64_t start = end - pattern.bytes.size();
        if (flow.compare(static_cast<std::size_t>(start),
                         pattern.bytes.size(), pattern.bytes) != 0) {
          continue;
        }
        if (profile.stateful) {
          if (end > profile.stop_offset) continue;
          found.emplace(pattern.middlebox, pattern.id, end);
        } else {
          // Which packet does the match end in? (end is 1-based; the byte
          // at flow offset end-1 belongs to that packet.)
          std::size_t pkt = 0;
          while (pkt + 1 < starts.size() && starts[pkt + 1] <= end - 1) {
            ++pkt;
          }
          if (start < starts[pkt]) continue;  // straddles: suppressed
          const std::uint64_t packet_relative = end - starts[pkt];
          if (packet_relative > profile.stop_offset) continue;
          found.emplace(pattern.middlebox, pattern.id, packet_relative);
        }
      }
    }
  } else {
    // Stateless chain: every packet scanned from the root independently.
    for (const auto& payload : packets) {
      const std::uint64_t limit =
          std::min<std::uint64_t>(payload.size(), chain_stop);
      for (const ModelPattern& pattern : patterns) {
        const bool is_active =
            std::find(active.begin(), active.end(), pattern.middlebox) !=
            active.end();
        if (!is_active) continue;
        const auto& profile = profile_of(pattern.middlebox);
        for (std::uint64_t end = pattern.bytes.size(); end <= limit; ++end) {
          const std::uint64_t start = end - pattern.bytes.size();
          if (payload.compare(static_cast<std::size_t>(start),
                              pattern.bytes.size(), pattern.bytes) != 0) {
            continue;
          }
          if (end > profile.stop_offset) continue;
          found.emplace(pattern.middlebox, pattern.id, end);
        }
      }
    }
  }
  return found;
}

Found engine_scan(const Engine& engine, ChainId chain,
                  const std::vector<std::string>& packets) {
  Found found;
  FlowCursor cursor;
  for (const std::string& payload : packets) {
    const auto result = engine.scan_packet(
        chain,
        BytesView(reinterpret_cast<const std::uint8_t*>(payload.data()),
                  payload.size()),
        cursor);
    cursor = result.cursor;
    for (const auto& section : result.matches) {
      for (const auto& e : section.entries) {
        for (std::uint32_t i = 0; i < e.run_length; ++i) {
          found.emplace(section.middlebox, e.pattern_id, e.position + i);
        }
      }
    }
  }
  return found;
}

class EngineModelTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineModelTest, EngineAgreesWithReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003 + 31);
  for (int iter = 0; iter < 25; ++iter) {
    // Random middlebox population.
    std::vector<MiddleboxProfile> profiles;
    const std::size_t num_mboxes = 1 + rng.index(3);
    for (MiddleboxId id = 1; id <= num_mboxes; ++id) {
      MiddleboxProfile p;
      p.id = id;
      p.name = "m" + std::to_string(id);
      p.stateful = rng.bernoulli(0.5);
      p.stop_offset = rng.bernoulli(0.3)
                          ? static_cast<std::uint32_t>(5 + rng.index(60))
                          : kNoStopCondition;
      profiles.push_back(p);
    }

    // Random patterns over {a, b}: dense accidental matches and suffix
    // relationships.
    std::vector<ModelPattern> patterns;
    EngineSpec spec;
    spec.middleboxes = profiles;
    for (const auto& profile : profiles) {
      const std::size_t n = 1 + rng.index(4);
      for (PatternId pid = 0; pid < n; ++pid) {
        std::string bytes;
        const std::size_t len = 1 + rng.index(5);
        for (std::size_t i = 0; i < len; ++i) {
          bytes.push_back(static_cast<char>('a' + rng.index(2)));
        }
        patterns.push_back(ModelPattern{bytes, profile.id, pid});
        spec.exact_patterns.push_back(
            ExactPatternSpec{bytes, profile.id, pid});
      }
    }

    // Random chains over subsets.
    std::map<ChainId, std::vector<MiddleboxId>> chains;
    const std::size_t num_chains = 1 + rng.index(3);
    for (ChainId c = 1; c <= num_chains; ++c) {
      std::vector<MiddleboxId> members;
      for (const auto& profile : profiles) {
        if (rng.bernoulli(0.6)) members.push_back(profile.id);
      }
      if (members.empty()) members.push_back(profiles[0].id);
      chains[c] = members;
    }
    spec.chains = chains;
    auto engine = Engine::compile(spec);

    // Random flow, random segmentation.
    std::string flow;
    const std::size_t flow_len = 1 + rng.index(150);
    for (std::size_t i = 0; i < flow_len; ++i) {
      flow.push_back(static_cast<char>('a' + rng.index(2)));
    }
    std::vector<std::string> packets;
    std::size_t at = 0;
    while (at < flow.size()) {
      const std::size_t take = 1 + rng.index(flow.size() - at);
      packets.push_back(flow.substr(at, take));
      at += take;
    }

    for (const auto& [chain, members] : chains) {
      const Found expected =
          reference_scan(profiles, patterns, members, packets);
      const Found actual = engine_scan(*engine, chain, packets);
      ASSERT_EQ(actual, expected)
          << "seed=" << GetParam() << " iter=" << iter << " chain=" << chain
          << " flow=" << flow << " packets=" << packets.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModelTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace dpisvc::dpi
