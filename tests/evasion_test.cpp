// Evasion matrix: for every OverlapPolicy, the production pipeline
// (IpDefragmenter -> FlowReassembler -> stateful dpi::Engine) must see
// exactly the stream the policy says it should. Each spec is checked two
// ways against the independent normalization oracle of
// workload/adversarial_gen:
//   1. the concatenation of released chunks equals the oracle's bytes;
//   2. the stateful match set over the streamed chunks equals a one-shot
//      scan of the oracle's bytes (positions are stream offsets, so the
//      sets compare directly).
// On top of the matrix, targeted cases pin the policy-divergence semantics
// (first_wins vs last_wins vs reject_ambiguous under conflicting overlaps)
// and the DpiInstance wiring (counters in stats_json / obs metrics /
// TELEMETRY_REPORT).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "dpi/engine.hpp"
#include "json/json.hpp"
#include "net/defrag.hpp"
#include "net/packet.hpp"
#include "net/reassembly.hpp"
#include "service/instance.hpp"
#include "service/messages.hpp"
#include "workload/adversarial_gen.hpp"

namespace dpisvc::workload {
namespace {

using net::OverlapPolicy;

constexpr dpi::ChainId kChain = 1;
constexpr char kPattern[] = "secret-attack";
// A run of the generator's decoy filler: present only in decoy-resolved
// streams, so reject_ambiguous must never report it.
constexpr char kDecoyPattern[] = "####";

constexpr OverlapPolicy kAllPolicies[] = {OverlapPolicy::kFirstWins,
                                          OverlapPolicy::kLastWins,
                                          OverlapPolicy::kRejectAmbiguous};

std::shared_ptr<const dpi::Engine> make_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{kPattern, 1, 7},
                         dpi::ExactPatternSpec{kDecoyPattern, 1, 8}};
  spec.chains[kChain] = {1};
  return dpi::Engine::compile(spec);
}

net::FiveTuple test_flow() {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        40000, 80, net::IpProto::kTcp};
}

/// (middlebox, pattern_id, stream position, run length) — the full identity
/// of one reported match.
using MatchKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::uint32_t>;

void collect_matches(const dpi::ScanResult& result,
                     std::vector<MatchKey>* sink) {
  for (const auto& mb : result.matches) {
    for (const auto& entry : mb.entries) {
      sink->emplace_back(mb.middlebox, entry.pattern_id, entry.position,
                         entry.run_length);
    }
  }
}

struct PipelineRun {
  Bytes released;                 ///< concatenation of all released chunks
  std::vector<MatchKey> matches;  ///< sorted stateful match set
};

/// Streams the trace through the real pipeline: defragment (when the spec
/// fragments), reassemble under `policy`, scan each released chunk with a
/// persistent stateful cursor.
PipelineRun run_pipeline(const dpi::Engine& engine,
                         const AdversarialTrace& trace, OverlapPolicy policy,
                         net::ReassemblyConfig rcfg = {},
                         net::DefragConfig dcfg = {}) {
  rcfg.overlap_policy = policy;
  dcfg.overlap_policy = policy;
  net::FlowReassembler reassembler(rcfg);
  net::IpDefragmenter defrag(dcfg);

  PipelineRun run;
  dpi::FlowCursor cursor;
  for (const net::Packet& packet : trace.packets) {
    net::Packet whole;
    if (packet.is_fragment()) {
      auto full = defrag.feed(packet);
      if (!full) continue;
      whole = std::move(*full);
    } else {
      defrag.tick();
      whole = packet;
    }
    const auto chunk = reassembler.feed(whole);
    if (!chunk) continue;
    run.released.insert(run.released.end(), chunk->data.begin(),
                        chunk->data.end());
    const auto result = engine.scan_packet(kChain, chunk->data, cursor);
    cursor = result.cursor;
    collect_matches(result, &run.matches);
  }
  std::sort(run.matches.begin(), run.matches.end());
  return run;
}

/// One-shot scan of the oracle-normalized bytes with a fresh cursor: the
/// ground truth the streamed pipeline must reproduce byte for byte and
/// match for match.
std::vector<MatchKey> scan_direct(const dpi::Engine& engine, BytesView bytes) {
  std::vector<MatchKey> matches;
  if (bytes.empty()) return matches;
  collect_matches(engine.scan_packet(kChain, bytes, dpi::FlowCursor{}),
                  &matches);
  std::sort(matches.begin(), matches.end());
  return matches;
}

bool contains_pattern(const std::vector<MatchKey>& matches,
                      std::uint32_t pattern_id) {
  return std::any_of(matches.begin(), matches.end(), [&](const MatchKey& m) {
    return std::get<1>(m) == pattern_id;
  });
}

/// The clean stream every spec transforms: the pattern starts at offset 8,
/// spanning several segments for every segment size the specs use. Length
/// is a multiple of 16 so fragmenting specs never leave an unfragmented
/// tail segment.
Bytes clean_stream() {
  std::string s = "aaaaaaaa";
  s += kPattern;  // offsets 8..20
  s += std::string(43, 'z');
  EXPECT_EQ(s.size() % 16, 0u);
  return to_bytes(s);
}

/// Core matrix assertion: pipeline == oracle for bytes and matches.
void expect_pipeline_matches_oracle(const dpi::Engine& engine,
                                    const AdversarialTrace& trace,
                                    OverlapPolicy policy,
                                    const net::ReassemblyConfig& rcfg = {},
                                    const net::DefragConfig& dcfg = {}) {
  const PipelineRun run = run_pipeline(engine, trace, policy, rcfg, dcfg);
  const NormalizedView oracle = normalize_trace(trace, policy, rcfg, dcfg);
  EXPECT_EQ(to_string(run.released), to_string(oracle.bytes))
      << "policy=" << net::overlap_policy_name(policy);
  EXPECT_EQ(run.matches, scan_direct(engine, oracle.bytes))
      << "policy=" << net::overlap_policy_name(policy);
}

TEST(EvasionMatrix, OutOfOrderShuffleIsPolicyInvariant) {
  const auto engine = make_engine();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EvasionSpec spec;
    spec.seed = seed;
    spec.segment_bytes = 4;
    spec.shuffle = true;
    const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
    for (OverlapPolicy policy : kAllPolicies) {
      expect_pipeline_matches_oracle(*engine, trace, policy);
      // No conflicting data: every policy reconstructs the clean stream and
      // finds the pattern.
      const NormalizedView oracle = normalize_trace(trace, policy);
      EXPECT_FALSE(oracle.ambiguous);
      EXPECT_EQ(to_string(oracle.bytes), to_string(clean_stream()));
      EXPECT_TRUE(contains_pattern(
          run_pipeline(*engine, trace, policy).matches, 7));
    }
  }
}

TEST(EvasionMatrix, RetransmitStormIsHarmless) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 42;
  spec.segment_bytes = 8;
  spec.shuffle = true;
  spec.retransmit_rate = 0.4;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  ASSERT_GT(trace.segments.size(), clean_stream().size() / 8);  // storms hit
  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
    // Retransmissions carry identical bytes: duplicates, not ambiguity.
    const NormalizedView oracle = normalize_trace(trace, policy);
    EXPECT_FALSE(oracle.ambiguous);
    EXPECT_EQ(to_string(oracle.bytes), to_string(clean_stream()));
  }
}

TEST(EvasionMatrix, ConflictDecoyLaterSplitsThePolicies) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 7;
  spec.segment_bytes = 8;
  spec.conflict = ConflictMode::kDecoyLater;
  spec.conflict_rate = 1.0;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);

  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
  }

  // first_wins: the true bytes arrived first, the decoy loses everywhere —
  // the clean stream (and the pattern) survive.
  const PipelineRun first =
      run_pipeline(*engine, trace, OverlapPolicy::kFirstWins);
  EXPECT_EQ(to_string(first.released), to_string(clean_stream()));
  EXPECT_TRUE(contains_pattern(first.matches, 7));
  EXPECT_FALSE(contains_pattern(first.matches, 8));

  // last_wins: the decoy overwrites the conflicted segments — the pattern
  // is masked and the decoy filler becomes visible.
  const PipelineRun last =
      run_pipeline(*engine, trace, OverlapPolicy::kLastWins);
  EXPECT_NE(to_string(last.released), to_string(clean_stream()));
  EXPECT_FALSE(contains_pattern(last.matches, 7));
  EXPECT_TRUE(contains_pattern(last.matches, 8));

  // reject_ambiguous: fail closed. Only the pre-conflict prefix is ever
  // released, and no match — genuine or decoy — is reported on
  // conflicting data.
  const PipelineRun reject =
      run_pipeline(*engine, trace, OverlapPolicy::kRejectAmbiguous);
  const std::string clean = to_string(clean_stream());
  EXPECT_LT(reject.released.size(), clean.size());
  EXPECT_EQ(to_string(reject.released),
            clean.substr(0, reject.released.size()));
  EXPECT_FALSE(contains_pattern(reject.matches, 7));
  EXPECT_FALSE(contains_pattern(reject.matches, 8));
  const NormalizedView oracle =
      normalize_trace(trace, OverlapPolicy::kRejectAmbiguous);
  EXPECT_TRUE(oracle.ambiguous);
  EXPECT_GT(oracle.conflicting_bytes, 0u);
}

TEST(EvasionMatrix, ConflictDecoyFirstFavorsLastWins) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 9;
  spec.segment_bytes = 8;
  spec.conflict = ConflictMode::kDecoyFirst;
  spec.conflict_rate = 1.0;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);

  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
  }

  // The mirror image of kDecoyLater: now the retransmitted true bytes win
  // only under last_wins.
  const PipelineRun last =
      run_pipeline(*engine, trace, OverlapPolicy::kLastWins);
  EXPECT_EQ(to_string(last.released), to_string(clean_stream()));
  EXPECT_TRUE(contains_pattern(last.matches, 7));

  const PipelineRun first =
      run_pipeline(*engine, trace, OverlapPolicy::kFirstWins);
  EXPECT_FALSE(contains_pattern(first.matches, 7));
  EXPECT_TRUE(contains_pattern(first.matches, 8));
}

TEST(EvasionMatrix, SequenceWrapStraddlingMatch) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 3;
  // The pattern occupies stream offsets 8..20; with this initial sequence
  // number it straddles 0xFFFFFFFF -> 0.
  spec.initial_seq = 0xFFFFFFF8u - 8u;
  spec.segment_bytes = 4;
  spec.shuffle = true;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
    EXPECT_TRUE(
        contains_pattern(run_pipeline(*engine, trace, policy).matches, 7));
  }
}

TEST(EvasionMatrix, FragmentedDeliveryReassemblesUnderEveryPolicy) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 11;
  spec.segment_bytes = 32;  // > fragment_payload: every segment fragments
  spec.fragment_payload = 16;
  spec.fragment_reverse = true;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  ASSERT_TRUE(std::any_of(trace.packets.begin(), trace.packets.end(),
                          [](const net::Packet& p) { return p.is_fragment(); }));
  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
    EXPECT_TRUE(
        contains_pattern(run_pipeline(*engine, trace, policy).matches, 7));
  }
}

TEST(EvasionMatrix, TinyFragmentsAreRejectedFailClosed) {
  const auto engine = make_engine();
  EvasionSpec spec;
  spec.seed = 13;
  spec.segment_bytes = 16;
  spec.fragment_payload = 8;  // below DefragConfig::min_fragment (16)
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  for (OverlapPolicy policy : kAllPolicies) {
    expect_pipeline_matches_oracle(*engine, trace, policy);
    // Every datagram leads with a tiny MF fragment: nothing completes,
    // nothing is scanned, nothing matches.
    const PipelineRun run = run_pipeline(*engine, trace, policy);
    EXPECT_TRUE(run.released.empty());
    EXPECT_TRUE(run.matches.empty());
  }
  // The real defragmenter counts the rejection.
  net::DefragConfig dcfg;
  net::IpDefragmenter defrag(dcfg);
  for (const net::Packet& p : trace.packets) {
    if (p.is_fragment()) defrag.feed(p);
  }
  EXPECT_GT(defrag.stats().rejected_tiny, 0u);
}

// --- DpiInstance wiring: the counters must surface end to end --------------

net::Packet tagged(const net::Packet& base) {
  net::Packet p = base;
  p.push_tag(net::TagKind::kPolicyChain, kChain);
  return p;
}

TEST(EvasionInstance, AmbiguityCountersSurfaceInStatsAndTelemetry) {
  service::InstanceConfig config;
  config.reassemble_tcp = true;
  config.reassembly.overlap_policy = OverlapPolicy::kRejectAmbiguous;
  service::DpiInstance instance("evasion-ut", config);
  instance.load_engine(make_engine(), 1);

  EvasionSpec spec;
  spec.seed = 7;
  spec.segment_bytes = 8;
  spec.conflict = ConflictMode::kDecoyLater;
  spec.conflict_rate = 1.0;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  for (const net::Packet& p : trace.packets) instance.process(tagged(p));

  const net::ReassemblyStats rs = instance.reassembly_stats();
  EXPECT_GT(rs.ambiguous_overlaps, 0u);
  EXPECT_GT(rs.conflicting_overlap_bytes, 0u);

  // stats_json: the per-policy reassembly block.
  const json::Value stats = instance.stats_json();
  const json::Value& reassembly = stats.at("reassembly");
  EXPECT_EQ(reassembly.at("policy").as_string(), "reject_ambiguous");
  EXPECT_EQ(static_cast<std::uint64_t>(
                reassembly.at("ambiguous_overlaps").as_int()),
            rs.ambiguous_overlaps);
  EXPECT_GT(reassembly.at("conflicting_overlap_bytes").as_int(), 0);

  // obs metrics: the per-shard counter is registered and non-zero.
  const std::string dumped = json::dump(stats);
  EXPECT_NE(dumped.find("reassembly.ambiguous_overlaps"), std::string::npos);

  // TELEMETRY_REPORT round trip carries the evasion signal to the
  // controller.
  const service::TelemetryReport report =
      service::make_telemetry_report(instance);
  EXPECT_EQ(report.ambiguous_overlaps, rs.ambiguous_overlaps);
  const service::TelemetryReport decoded =
      service::decode_telemetry_report(service::encode(report));
  EXPECT_EQ(decoded.ambiguous_overlaps, rs.ambiguous_overlaps);
  EXPECT_EQ(decoded.conflicting_overlap_bytes, rs.conflicting_overlap_bytes);
}

TEST(EvasionInstance, DefragmentationCountersSurfaceInStats) {
  service::InstanceConfig config;
  config.reassemble_tcp = true;
  config.defragment_ip = true;
  service::DpiInstance instance("defrag-ut", config);
  instance.load_engine(make_engine(), 1);

  EvasionSpec spec;
  spec.seed = 11;
  spec.segment_bytes = 32;
  spec.fragment_payload = 16;
  const auto trace = make_evasion_trace(test_flow(), clean_stream(), spec);
  bool matched = false;
  for (const net::Packet& p : trace.packets) {
    matched |= instance.process(tagged(p)).had_matches;
  }
  EXPECT_TRUE(matched);  // defrag + reassembly still detect the pattern

  const net::DefragStats ds = instance.defrag_stats();
  EXPECT_GT(ds.fragments, 0u);
  EXPECT_GT(ds.datagrams_completed, 0u);
  EXPECT_GT(instance.telemetry().defrag_held, 0u);

  const json::Value stats = instance.stats_json();
  EXPECT_EQ(static_cast<std::uint64_t>(
                stats.at("defrag").at("datagrams_completed").as_int()),
            ds.datagrams_completed);
}

}  // namespace
}  // namespace dpisvc::workload
