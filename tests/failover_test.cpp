// Fault-tolerance tests (§4.3, §7): instance failure detection via missed
// heartbeat windows, FailoverPlan chain reassignment + flow-state migration,
// recovery re-sync, and MiddleboxNode graceful degradation when result
// packets never arrive. Ends with the acceptance scenario: a DPI instance
// is killed mid-traffic in netsim (with and without injected link loss) and
// the system must detect, fail over, and leave no packet permanently
// stalled.
#include <gtest/gtest.h>

#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/controller.hpp"
#include "service/instance_node.hpp"

namespace dpisvc {
namespace {

using namespace dpisvc::mbox;
using namespace dpisvc::netsim;
using namespace dpisvc::service;

RuleSpec exact_rule(dpi::PatternId id, std::string pattern, Verdict verdict) {
  RuleSpec rule;
  rule.id = id;
  rule.verdict = verdict;
  rule.exact = std::move(pattern);
  return rule;
}

net::FiveTuple flow(std::uint16_t port) {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        port, 80, net::IpProto::kTcp};
}

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

net::Packet flow_packet(std::string_view payload, std::uint16_t src_port,
                        std::uint16_t ip_id) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 99);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.ip_id = ip_id;
  p.payload = to_bytes(payload);
  return p;
}

json::Value register_msg(int id, const char* name) {
  return json::parse(R"({"type":"register","middlebox_id":)" +
                     std::to_string(id) + R"(,"name":")" + name + R"("})");
}

json::Value add_exact_msg(int id, int rule, const std::string& text) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.exact.push_back(ExactPatternMsg{static_cast<dpi::PatternId>(rule), text});
  return encode(req);
}

// --- failure detection --------------------------------------------------------

TEST(FailureDetection, MissedWindowsDeclareFailure) {
  FailoverConfig failover;
  failover.miss_windows = 2;
  DpiController controller({}, failover);
  controller.handle_message(register_msg(1, "ids"));
  controller.create_instance("alive");
  controller.create_instance("dead");

  for (int window = 0; window < 3; ++window) {
    controller.heartbeat("alive");  // "dead" never heartbeats again
    controller.collect_telemetry();
  }
  EXPECT_FALSE(controller.is_failed("alive"));
  EXPECT_TRUE(controller.is_failed("dead"));
  EXPECT_EQ(controller.failed_instances(),
            std::vector<std::string>{"dead"});
  // Detection happened within miss_windows telemetry windows.
  EXPECT_LE(controller.epoch(), 3u);
}

TEST(FailureDetection, HeartbeatsKeepInstancesAlive) {
  FailoverConfig failover;
  failover.miss_windows = 2;
  DpiController controller({}, failover);
  controller.handle_message(register_msg(1, "ids"));
  controller.create_instance("i1");
  for (int window = 0; window < 10; ++window) {
    controller.heartbeat("i1");
    controller.collect_telemetry();
  }
  EXPECT_FALSE(controller.is_failed("i1"));
  controller.heartbeat("ghost");  // unknown names are ignored, not tracked
  EXPECT_FALSE(controller.is_failed("ghost"));
}

TEST(FailureDetection, FailedInstanceExcludedFromPlacement) {
  FailoverConfig failover;
  failover.miss_windows = 1;
  DpiController controller({}, failover);
  controller.handle_message(register_msg(1, "ids"));
  const dpi::ChainId chain = controller.register_policy_chain({1});
  controller.create_instance("i1");
  controller.create_instance("i2");
  for (int window = 0; window < 2; ++window) {
    controller.heartbeat("i2");  // i1 stays silent
    controller.collect_telemetry();
  }
  ASSERT_TRUE(controller.is_failed("i1"));
  EXPECT_EQ(controller.auto_assign_chain(chain), "i2");
}

// --- failover plans -----------------------------------------------------------

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailoverConfig failover;
    failover.miss_windows = 1;
    controller_ = std::make_unique<DpiController>(StressConfig{}, failover);
    controller_->handle_message(json::parse(
        R"({"type":"register","middlebox_id":1,"name":"ids","stateful":true})"));
    controller_->handle_message(add_exact_msg(1, 0, "attack-sig"));
    chain_a_ = controller_->register_policy_chain({1});
    controller_->handle_message(register_msg(2, "av"));
    chain_b_ = controller_->register_policy_chain({1, 2});
    controller_->create_instance("i1");
    controller_->create_instance("i2");
    controller_->create_instance("i3");
    controller_->assign_chain(chain_a_, "i1");
    controller_->assign_chain(chain_b_, "i1");
  }

  /// Fails `name` by letting everyone else heartbeat until it is declared.
  void fail_instance(const std::string& name) {
    for (int window = 0; window < 4 && !controller_->is_failed(name);
         ++window) {
      for (const std::string& inst : controller_->instance_names()) {
        if (inst != name) controller_->heartbeat(inst);
      }
      controller_->collect_telemetry();
    }
    ASSERT_TRUE(controller_->is_failed(name));
  }

  std::unique_ptr<DpiController> controller_;
  dpi::ChainId chain_a_ = 0;
  dpi::ChainId chain_b_ = 0;
};

TEST_F(FailoverTest, ChainsSpreadAcrossLiveInstances) {
  fail_instance("i1");
  const FailoverPlan plan = controller_->evaluate_failover();
  ASSERT_EQ(plan.failed_instances, std::vector<std::string>{"i1"});
  ASSERT_EQ(plan.reassignments.size(), 2u);
  // Least-loaded placement spreads the two orphaned chains over i2 and i3.
  EXPECT_NE(plan.reassignments[0].to_instance,
            plan.reassignments[1].to_instance);
  for (const Migration& m : plan.reassignments) {
    EXPECT_EQ(m.from_instance, "i1");
    EXPECT_NE(m.to_instance, "i1");
  }

  const FailoverResult result = controller_->apply_failover(plan);
  EXPECT_EQ(result.chains_reassigned, 2u);
  EXPECT_NE(*controller_->instance_for_chain(chain_a_), "i1");
  EXPECT_NE(*controller_->instance_for_chain(chain_b_), "i1");
  // Re-evaluating finds nothing left to move.
  EXPECT_TRUE(controller_->evaluate_failover().empty());
}

TEST_F(FailoverTest, SurvivingFlowStateMigrates) {
  auto i1 = controller_->instance("i1");
  i1->scan(chain_a_, flow(1), view("partial attack-"));
  i1->scan(chain_a_, flow(2), view("benign bytes"));
  ASSERT_EQ(i1->active_flows(), 2u);

  fail_instance("i1");
  const FailoverPlan plan = controller_->evaluate_failover();
  const std::string target = plan.flow_targets.at("i1");
  EXPECT_FALSE(target.empty());
  const FailoverResult result = controller_->apply_failover(plan);
  EXPECT_EQ(result.flows_migrated, 2u);
  EXPECT_EQ(result.flows_lost, 0u);
  EXPECT_EQ(i1->active_flows(), 0u);
  EXPECT_EQ(controller_->instance(target)->active_flows(), 2u);
  // The migrated cursor continues the cross-packet match on the target.
  auto scan = controller_->instance(target)->scan(chain_a_, flow(1),
                                                  view("sig and more"));
  EXPECT_TRUE(scan.has_matches());
}

TEST_F(FailoverTest, NoLiveInstanceLeavesChainsInPlace) {
  fail_instance("i2");
  fail_instance("i3");
  fail_instance("i1");
  const FailoverPlan plan = controller_->evaluate_failover();
  EXPECT_TRUE(plan.reassignments.empty());
  EXPECT_EQ(plan.flow_targets.at("i1"), "");
  const FailoverResult result = controller_->apply_failover(plan);
  EXPECT_EQ(result.chains_reassigned, 0u);
  EXPECT_EQ(*controller_->instance_for_chain(chain_a_), "i1");
}

TEST_F(FailoverTest, RoutingListenerSeesEveryReassignment) {
  std::vector<std::pair<dpi::ChainId, std::string>> updates;
  controller_->set_routing_listener(
      [&](dpi::ChainId chain, const std::string& to) {
        updates.emplace_back(chain, to);
      });
  fail_instance("i1");
  controller_->apply_failover(controller_->evaluate_failover());
  ASSERT_EQ(updates.size(), 2u);
  for (const auto& [chain, to] : updates) {
    EXPECT_EQ(*controller_->instance_for_chain(chain), to);
  }
}

TEST_F(FailoverTest, RecoveryResyncsEngineBeforeTakingTraffic) {
  fail_instance("i1");
  auto i1 = controller_->instance("i1");
  const std::uint64_t stale = i1->engine_version();
  // Pattern updates while i1 is down are not pushed to it.
  controller_->handle_message(add_exact_msg(1, 7, "fresh-threat"));
  EXPECT_EQ(i1->engine_version(), stale);
  EXPECT_NE(controller_->instance("i2")->engine_version(), stale);

  EXPECT_TRUE(controller_->recover_instance("i1"));
  EXPECT_FALSE(controller_->is_failed("i1"));
  EXPECT_EQ(i1->engine_version(),
            controller_->instance("i2")->engine_version());
  auto scan = i1->scan(chain_a_, flow(9), view("a fresh-threat lands"));
  EXPECT_TRUE(scan.has_matches());
  EXPECT_FALSE(controller_->recover_instance("ghost"));
}

// --- migrate_flow failure paths ----------------------------------------------

TEST_F(FailoverTest, MigrateFlowFailurePaths) {
  auto i1 = controller_->instance("i1");
  i1->scan(chain_a_, flow(5), view("bytes"));
  EXPECT_FALSE(controller_->migrate_flow(flow(5), "ghost", "i2"));    // bad src
  EXPECT_FALSE(controller_->migrate_flow(flow(5), "i1", "ghost"));    // bad dst
  EXPECT_FALSE(controller_->migrate_flow(flow(5), "i1", "i1"));      // no-op
  EXPECT_FALSE(controller_->migrate_flow(flow(77), "i1", "i2"));  // no state
  EXPECT_EQ(i1->active_flows(), 1u);  // nothing was disturbed
  EXPECT_TRUE(controller_->migrate_flow(flow(5), "i1", "i2"));
}

// --- middlebox graceful degradation ------------------------------------------

class DegradeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = std::make_unique<Ids>(1, /*stateful=*/false);
    ids_->add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
    ids_->attach(controller_);
    chain_ = controller_.register_policy_chain({1});
    instance_ = controller_.create_instance("dpi1");
    controller_.assign_chain(chain_, "dpi1");
  }

  /// Scans `packet` through the DPI instance off-fabric, returning the
  /// annotated data packet and (if matched) its dedicated result packet.
  ProcessOutput process(net::Packet packet) {
    packet.push_tag(net::TagKind::kPolicyChain,
                    static_cast<std::uint32_t>(chain_));
    return instance_->process(std::move(packet));
  }

  service::DpiController controller_;
  std::unique_ptr<Ids> ids_;
  std::shared_ptr<DpiInstance> instance_;
  dpi::ChainId chain_ = 0;
};

TEST_F(DegradeTest, ResultTimeoutFallsBackToLocalScan) {
  Fabric fabric;
  Host& sink = fabric.add_node<Host>("sink");
  DegradeConfig degrade;
  degrade.result_deadline = 4;
  MiddleboxNode& node = fabric.add_node<MiddleboxNode>(
      "ids", *ids_, NodeMode::kService, degrade);
  fabric.connect("ids", "sink");

  ProcessOutput out = process(flow_packet("hit the attack-sig now", 1, 1));
  ASSERT_TRUE(out.result.has_value());
  fabric.send("sink", "ids", std::move(out.data));  // result never sent
  fabric.run();
  EXPECT_EQ(node.pending(), 1u);  // buffered, waiting for the result

  // Push unrelated traffic through until the delivery clock passes the
  // deadline; the waiter degrades to a local standalone scan.
  for (std::uint16_t i = 0; i < 8; ++i) {
    fabric.send("sink", "ids", flow_packet("benign filler", 9, i));
    fabric.run();
  }
  EXPECT_EQ(node.pending(), 0u);
  EXPECT_EQ(node.result_timeouts(), 1u);
  EXPECT_EQ(node.fallback_scans(), 1u);
  // The private engine saw the pattern, so the alert still fired (§2/§7:
  // the middlebox retains its own DPI engine as a fallback).
  EXPECT_EQ(ids_->alerts().size(), 1u);
  // Data packet was forwarded after the fallback scan, not lost.
  EXPECT_EQ(sink.received().size(), 9u);
}

TEST_F(DegradeTest, ForwardUnscannedPolicySkipsLocalScan) {
  Fabric fabric;
  Host& sink = fabric.add_node<Host>("sink");
  DegradeConfig degrade;
  degrade.result_deadline = 2;
  degrade.fallback = FallbackPolicy::kForwardUnscanned;
  MiddleboxNode& node = fabric.add_node<MiddleboxNode>(
      "ids", *ids_, NodeMode::kService, degrade);
  fabric.connect("ids", "sink");

  ProcessOutput out = process(flow_packet("hit the attack-sig now", 1, 1));
  fabric.send("sink", "ids", std::move(out.data));
  fabric.run();
  ASSERT_EQ(node.pending(), 1u);
  node.expire_pending(/*force=*/true);
  fabric.run();
  EXPECT_EQ(node.pending(), 0u);
  EXPECT_EQ(node.forwarded_unscanned(), 1u);
  EXPECT_EQ(node.fallback_scans(), 0u);
  EXPECT_EQ(ids_->alerts().size(), 0u);  // nothing scanned it
  EXPECT_EQ(sink.received().size(), 1u);
}

TEST_F(DegradeTest, CapacityEvictionKeepsBufferBounded) {
  Fabric fabric;
  Host& sink = fabric.add_node<Host>("sink");
  DegradeConfig degrade;
  degrade.max_pending = 4;
  degrade.result_deadline = 0;  // only capacity pressure, no deadline
  MiddleboxNode& node = fabric.add_node<MiddleboxNode>(
      "ids", *ids_, NodeMode::kService, degrade);
  fabric.connect("ids", "sink");

  for (std::uint16_t i = 0; i < 10; ++i) {
    ProcessOutput out =
        process(flow_packet("attack-sig payload", 1,
                            static_cast<std::uint16_t>(100 + i)));
    fabric.send("sink", "ids", std::move(out.data));  // results withheld
  }
  fabric.run();
  EXPECT_EQ(node.pending(), 4u);     // bounded at capacity
  EXPECT_EQ(node.evictions(), 6u);   // oldest six degraded out
  EXPECT_EQ(node.fallback_scans(), 6u);
  EXPECT_EQ(sink.received().size(), 6u);  // evicted packets still forwarded

  node.expire_pending(/*force=*/true);
  fabric.run();
  EXPECT_EQ(node.pending(), 0u);
  EXPECT_EQ(sink.received().size(), 10u);  // zero permanently stalled
}

TEST_F(DegradeTest, OrphanedResultsAreEvicted) {
  Fabric fabric;
  fabric.add_node<Host>("sink");
  DegradeConfig degrade;
  degrade.result_deadline = 2;
  MiddleboxNode& node = fabric.add_node<MiddleboxNode>(
      "ids", *ids_, NodeMode::kService, degrade);
  fabric.connect("ids", "sink");

  ProcessOutput out = process(flow_packet("attack-sig payload", 1, 1));
  ASSERT_TRUE(out.result.has_value());
  fabric.send("sink", "ids", std::move(*out.result));  // data packet lost
  fabric.run();
  EXPECT_EQ(node.pending(), 1u);
  node.expire_pending(/*force=*/true);
  EXPECT_EQ(node.pending(), 0u);
  EXPECT_EQ(node.evictions(), 1u);
  EXPECT_EQ(node.result_timeouts(), 0u);  // no data packet was stalled
}

// --- acceptance: kill an instance mid-traffic --------------------------------

class InstanceFailover : public ::testing::TestWithParam<double> {
 protected:
  static constexpr std::size_t kMissWindows = 2;

  void SetUp() override {
    StressConfig stress;  // defaults; stress is not under test here
    FailoverConfig failover;
    failover.miss_windows = kMissWindows;
    controller_ = std::make_unique<DpiController>(stress, failover);
    ids_ = std::make_unique<Ids>(1, /*stateful=*/false);
    ids_->add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
    ids_->attach(*controller_);
    chain_ = controller_->register_policy_chain({1});
    auto i1 = controller_->create_instance("dpi1");
    auto i2 = controller_->create_instance("dpi2");
    controller_->assign_chain(chain_, "dpi1");

    fabric_.add_node<Switch>("s1");
    src_ = &fabric_.add_node<Host>("src");
    dst_ = &fabric_.add_node<Host>("dst");
    fabric_.add_node<InstanceNode>("dpi1", i1);
    fabric_.add_node<InstanceNode>("dpi2", i2);
    DegradeConfig degrade;
    degrade.result_deadline = 64;
    ids_node_ = &fabric_.add_node<MiddleboxNode>("ids", *ids_,
                                                 NodeMode::kService, degrade);
    for (const char* n : {"src", "dst", "dpi1", "dpi2", "ids"}) {
      fabric_.connect("s1", n);
    }
    src_->set_gateway("s1");

    sdn_ = std::make_unique<SdnController>(fabric_);
    tsa_ = std::make_unique<TrafficSteeringApp>(*sdn_, "s1");
    PolicyChainSpec spec;
    spec.id = chain_;
    spec.ingress = "src";
    spec.sequence = {"dpi1", "ids"};
    spec.egress = "dst";
    tsa_->install_chain(spec);
    // Failover pushes placement changes straight into the TSA.
    controller_->set_routing_listener(
        [this](dpi::ChainId chain, const std::string& instance) {
          tsa_->update_sequence(chain, {instance, "ids"});
        });

    const double loss = GetParam();
    if (loss > 0) {
      fabric_.set_fault_seed(1234);
      LinkFaults faults;
      faults.drop = loss;
      for (const char* n : {"src", "dst", "dpi1", "dpi2", "ids"}) {
        fabric_.set_link_faults("s1", n, faults);
      }
    }
  }

  /// One telemetry window: a burst of traffic, then heartbeats from every
  /// non-crashed instance, then telemetry collection + failover evaluation.
  void run_window(int packets) {
    for (int i = 0; i < packets; ++i) {
      const bool evil = (i % 4 == 0);
      src_->send(flow_packet(evil ? "carrying attack-sig today"
                                  : "plain benign content",
                             static_cast<std::uint16_t>(1000 + i % 8),
                             next_ip_id_++));
      fabric_.run();
    }
    for (const std::string& name : controller_->instance_names()) {
      if (!fabric_.crashed(name)) controller_->heartbeat(name);
    }
    controller_->collect_telemetry();
    controller_->apply_failover(controller_->evaluate_failover());
  }

  std::unique_ptr<DpiController> controller_;
  std::unique_ptr<Ids> ids_;
  Fabric fabric_;
  Host* src_ = nullptr;
  Host* dst_ = nullptr;
  MiddleboxNode* ids_node_ = nullptr;
  std::unique_ptr<SdnController> sdn_;
  std::unique_ptr<TrafficSteeringApp> tsa_;
  dpi::ChainId chain_ = 0;
  std::uint16_t next_ip_id_ = 1;
};

TEST_P(InstanceFailover, KillMidTrafficDetectsFailsOverAndStallsNothing) {
  // Healthy phase.
  run_window(20);
  EXPECT_FALSE(controller_->is_failed("dpi1"));
  EXPECT_GT(dst_->received().size(), 0u);

  // Kill dpi1 mid-traffic.
  fabric_.crash_node("dpi1");
  const std::uint64_t epoch_at_crash = controller_->epoch();
  std::uint64_t detected_at = 0;
  for (int window = 0; window < 6 && detected_at == 0; ++window) {
    run_window(20);
    if (controller_->is_failed("dpi1")) detected_at = controller_->epoch();
  }
  ASSERT_NE(detected_at, 0u) << "failure never detected";
  // Detection within the configured number of telemetry windows.
  EXPECT_LE(detected_at - epoch_at_crash, kMissWindows + 1);
  // All of dpi1's chains were reassigned to a live instance and the TSA
  // rerouted the data plane.
  ASSERT_TRUE(controller_->instance_for_chain(chain_).has_value());
  EXPECT_EQ(*controller_->instance_for_chain(chain_), "dpi2");

  // Traffic keeps flowing end-to-end through dpi2.
  const std::size_t delivered_before = dst_->received().size();
  run_window(40);
  EXPECT_GT(dst_->received().size(), delivered_before);
  EXPECT_GT(controller_->instance("dpi2")->telemetry().packets, 0u);

  // Zero permanently stalled packets: drain waiters whose results were
  // lost to the crash or to link loss, then nothing may remain buffered.
  ids_node_->expire_pending(/*force=*/true);
  fabric_.run();
  EXPECT_EQ(ids_node_->pending(), 0u);
  // The default fallback scans locally; nothing left unscanned.
  EXPECT_EQ(ids_node_->forwarded_unscanned(), 0u);

  // Recovery: restart dpi1 and let it rejoin the pool at current version.
  fabric_.restore_node("dpi1");
  EXPECT_TRUE(controller_->recover_instance("dpi1"));
  EXPECT_FALSE(controller_->is_failed("dpi1"));
  EXPECT_EQ(controller_->instance("dpi1")->engine_version(),
            controller_->instance("dpi2")->engine_version());
}

INSTANTIATE_TEST_SUITE_P(LossLevels, InstanceFailover,
                         ::testing::Values(0.0, 0.01));

}  // namespace
}  // namespace dpisvc
