// Tests for the per-instance active-flow table (stateful scanning state).
#include <gtest/gtest.h>

#include "dpi/flow_table.hpp"

namespace dpisvc::dpi {
namespace {

net::FiveTuple flow(std::uint16_t src_port) {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        src_port, 80, net::IpProto::kTcp};
}

TEST(FlowTable, UnknownFlowReturnsInvalidCursor) {
  FlowTable table;
  EXPECT_FALSE(table.lookup(flow(1)).valid);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, UpdateThenLookup) {
  FlowTable table;
  table.update(flow(1), FlowCursor{42, 1000, true});
  const FlowCursor c = table.lookup(flow(1));
  EXPECT_TRUE(c.valid);
  EXPECT_EQ(c.dfa_state, 42u);
  EXPECT_EQ(c.offset, 1000u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, UpdateOverwrites) {
  FlowTable table;
  table.update(flow(1), FlowCursor{1, 10, true});
  table.update(flow(1), FlowCursor{2, 20, true});
  EXPECT_EQ(table.lookup(flow(1)).dfa_state, 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, BothDirectionsShareState) {
  FlowTable table;
  table.update(flow(1), FlowCursor{7, 5, true});
  net::FiveTuple reverse = flow(1);
  std::swap(reverse.src_ip, reverse.dst_ip);
  std::swap(reverse.src_port, reverse.dst_port);
  EXPECT_EQ(table.lookup(reverse).dfa_state, 7u);
}

TEST(FlowTable, EraseRemoves) {
  FlowTable table;
  table.update(flow(1), FlowCursor{1, 1, true});
  EXPECT_TRUE(table.erase(flow(1)));
  EXPECT_FALSE(table.erase(flow(1)));
  EXPECT_FALSE(table.lookup(flow(1)).valid);
}

TEST(FlowTable, ExtractForMigration) {
  FlowTable table;
  table.update(flow(9), FlowCursor{33, 444, true});
  const FlowCursor c = table.extract(flow(9));
  EXPECT_TRUE(c.valid);
  EXPECT_EQ(c.dfa_state, 33u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.extract(flow(9)).valid);
}

TEST(FlowTable, LruEvictionAtCapacity) {
  FlowTable table(/*max_flows=*/3);
  table.update(flow(1), FlowCursor{1, 0, true});
  table.update(flow(2), FlowCursor{2, 0, true});
  table.update(flow(3), FlowCursor{3, 0, true});
  // Touch flow 1 so flow 2 becomes the LRU victim.
  (void)table.lookup(flow(1));
  table.update(flow(4), FlowCursor{4, 0, true});
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_TRUE(table.lookup(flow(1)).valid);
  EXPECT_FALSE(table.lookup(flow(2)).valid);  // evicted
  EXPECT_TRUE(table.lookup(flow(3)).valid);
  EXPECT_TRUE(table.lookup(flow(4)).valid);
}

TEST(FlowTable, RejectsZeroCapacity) {
  EXPECT_THROW(FlowTable(0), std::invalid_argument);
}

TEST(FlowTable, ClearEmptiesEverything) {
  FlowTable table;
  for (std::uint16_t p = 1; p <= 10; ++p) {
    table.update(flow(p), FlowCursor{p, 0, true});
  }
  EXPECT_EQ(table.size(), 10u);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(flow(5)).valid);
}

TEST(FlowTable, UpdateSignalsLiveCursorEviction) {
  FlowTable table(/*max_flows=*/1);
  // Room available: no eviction.
  EXPECT_FALSE(table.update(flow(1), FlowCursor{1, 10, true}));
  // Refreshing an existing flow never evicts.
  EXPECT_FALSE(table.update(flow(1), FlowCursor{2, 20, true}));
  // Inserting a second flow evicts flow 1's live cursor: signalled.
  EXPECT_TRUE(table.update(flow(2), FlowCursor{3, 0, true}));
  EXPECT_EQ(table.evictions(), 1u);
  // Evicting an entry whose cursor was never valid is not a state loss.
  table.clear();
  table.update(flow(3), FlowCursor{});  // invalid cursor
  EXPECT_FALSE(table.update(flow(4), FlowCursor{5, 0, true}));
  EXPECT_EQ(table.evictions(), 2u);  // still counted as an eviction
}

TEST(FlowTable, DrainExtractsEverythingMruFirst) {
  FlowTable table;
  for (std::uint16_t p = 1; p <= 5; ++p) {
    table.update(flow(p), FlowCursor{p, p, true});
  }
  (void)table.lookup(flow(2));  // flow 2 becomes most recent
  const auto drained = table.drain();
  ASSERT_EQ(drained.size(), 5u);
  EXPECT_EQ(drained.front().first, flow(2).canonical());
  EXPECT_EQ(drained.front().second.dfa_state, 2u);
  EXPECT_EQ(table.size(), 0u);
  for (const auto& [key, cursor] : drained) {
    EXPECT_TRUE(cursor.valid);
  }
}

TEST(FlowTable, ManyFlowsStressWithEvictionAccounting) {
  FlowTable table(/*max_flows=*/64);
  for (std::uint16_t p = 0; p < 1000; ++p) {
    table.update(flow(p), FlowCursor{p, p, true});
  }
  EXPECT_EQ(table.size(), 64u);
  EXPECT_EQ(table.evictions(), 1000u - 64u);
  // The most recent 64 flows survive.
  for (std::uint16_t p = 1000 - 64; p < 1000; ++p) {
    EXPECT_TRUE(table.lookup(flow(p)).valid) << p;
  }
}

}  // namespace
}  // namespace dpisvc::dpi
