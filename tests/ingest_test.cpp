// Zero-copy batched ingest pipeline (DESIGN.md §4h, tier-1).
//
// Covers the fabric→shard handoff bottom-up:
//  - SpscRing: wrap-around, exact capacity (including capacity 1), and the
//    concurrent single-producer/single-consumer contract (the TSan build of
//    this binary is the race oracle);
//  - PacketArena: view stability across chunk growth, oversized payloads,
//    and zero-allocation reuse after reset();
//  - ScanPool: bounded rings with block/shed overload policies and the
//    completion latch;
//  - IngestPipeline: results byte-identical to the sequential scan path for
//    every worker count, arena lifetime under consumer leases, and the two
//    overload behaviors — kShed bounds memory by dropping whole packets
//    (counted, accepted subset still byte-identical), kBlock bounds memory
//    by stalling the producer and eventually delivers everything;
//  - process_batch() ≡ per-packet process(), batched InstanceNode ≡
//    per-packet InstanceNode through a fabric (on_idle flushes stragglers),
//    and Middlebox::apply_report_batch ≡ per-packet apply_report_entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/spsc_ring.hpp"
#include "dpi/engine.hpp"
#include "mbox/middlebox.hpp"
#include "netsim/fabric.hpp"
#include "service/ingest.hpp"
#include "service/instance.hpp"
#include "service/instance_node.hpp"

namespace dpisvc::service {
namespace {

// --- shared fixtures ---------------------------------------------------------

std::shared_ptr<const dpi::Engine> test_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";  // stateless
  dpi::MiddleboxProfile av;
  av.id = 2;
  av.name = "av";
  av.stateful = true;
  spec.middleboxes = {ids, av};
  spec.exact_patterns = {
      dpi::ExactPatternSpec{"evil", 1, 0},
      dpi::ExactPatternSpec{"GET /", 1, 1},
      dpi::ExactPatternSpec{"splitpattern", 2, 0},
      dpi::ExactPatternSpec{"virus", 2, 1},
  };
  spec.chains[1] = {1};     // stateless chain
  spec.chains[2] = {1, 2};  // stateful chain
  return dpi::Engine::compile(spec);
}

struct TracePacket {
  dpi::ChainId chain = 0;
  net::FiveTuple flow;
  Bytes payload;
};

/// Interleaved multi-flow trace with patterns planted to straddle packet
/// boundaries (same construction as scan_mt_test, smaller).
std::vector<TracePacket> make_trace(std::size_t num_flows = 8) {
  Rng rng(20140814);
  struct FlowState {
    dpi::ChainId chain;
    net::FiveTuple tuple;
    std::vector<Bytes> packets;
    std::size_t next = 0;
  };
  std::vector<FlowState> flows;
  for (std::size_t f = 0; f < num_flows; ++f) {
    FlowState fs;
    fs.chain = (f % 2 == 0) ? dpi::ChainId{2} : dpi::ChainId{1};
    fs.tuple =
        net::FiveTuple{net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(f), 1),
                       net::Ipv4Addr(10, 1, 1, 1),
                       static_cast<std::uint16_t>(1000 + f), 80,
                       net::IpProto::kTcp};
    std::string stream = "GET /index HTTP/1.1 ";
    for (int i = 0; i < 20; ++i) {
      switch (rng.index(5)) {
        case 0: stream += "splitpattern"; break;
        case 1: stream += "evil"; break;
        case 2: stream += "virus"; break;
        default:
          for (std::size_t j = 0; j < 1 + rng.index(16); ++j) {
            stream.push_back(static_cast<char>('a' + rng.index(26)));
          }
      }
    }
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.index(20), stream.size() - at);
      fs.packets.push_back(to_bytes(stream.substr(at, take)));
      at += take;
    }
    flows.push_back(std::move(fs));
  }
  std::vector<TracePacket> trace;
  for (;;) {
    std::vector<std::size_t> pending;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (flows[f].next < flows[f].packets.size()) pending.push_back(f);
    }
    if (pending.empty()) break;
    FlowState& fs = flows[pending[rng.index(pending.size())]];
    trace.push_back(TracePacket{fs.chain, fs.tuple, fs.packets[fs.next++]});
  }
  return trace;
}

/// Canonical serialization: byte-identical strings ⇔ identical match sets.
std::string serialize(const std::vector<dpi::ScanResult>& results) {
  std::ostringstream out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "#" << i << ":" << results[i].bytes_scanned << ";";
    for (const auto& section : results[i].matches) {
      if (section.entries.empty()) continue;
      out << "m" << section.middlebox << "{";
      for (const auto& e : section.entries) {
        out << e.pattern_id << "@" << e.position << "x" << e.run_length << ",";
      }
      out << "}";
    }
    out << "\n";
  }
  return out.str();
}

/// A five-tuple whose canonical hash places it on `shard` of `instance`.
net::FiveTuple flow_on_shard(const DpiInstance& instance, std::size_t shard) {
  for (std::uint16_t port = 2000; port < 3000; ++port) {
    const net::FiveTuple flow{net::Ipv4Addr(10, 9, 9, 9),
                              net::Ipv4Addr(10, 8, 8, 8), port, 80,
                              net::IpProto::kTcp};
    if (instance.shard_of_flow(flow) == shard) return flow;
  }
  ADD_FAILURE() << "no port mapping to shard " << shard;
  return {};
}

/// ScanPool::JobFn that spins until released — the stalled-shard fixture.
struct StallCtx {
  std::atomic<bool> running{false};
  std::atomic<bool> release{false};
};

void stall_job(void* ctx, std::size_t) {
  auto* stall = static_cast<StallCtx*>(ctx);
  stall->running.store(true, std::memory_order_release);
  while (!stall->release.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void count_job(void* ctx, std::size_t) {
  static_cast<std::atomic<std::size_t>*>(ctx)->fetch_add(1);
}

// --- SpscRing ----------------------------------------------------------------

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, FifoAcrossWrapAround) {
  SpscRing<int> ring(3);  // deliberately not a power of two: capacity is exact
  EXPECT_EQ(ring.capacity(), 3u);
  int out = 0;
  int next_push = 0;
  int next_pop = 0;
  // Many cycles at varying occupancy so the 64-bit cursors lap the slot
  // array repeatedly.
  for (int round = 0; round < 100; ++round) {
    const int burst = 1 + round % 3;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_push(int{next_push}));
      ++next_push;
    }
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ExactCapacityFullAndEmpty) {
  SpscRing<int> ring(3);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4)) << "capacity must be exact, not rounded up";
  EXPECT_EQ(ring.size(), 3u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_push(4)) << "pop must free the slot";
}

TEST(SpscRing, CapacityOnePingPong) {
  SpscRing<int> ring(1);
  int out = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    ASSERT_FALSE(ring.try_push(int{i})) << "capacity-1 ring holds one item";
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
    ASSERT_FALSE(ring.try_pop(out));
  }
}

TEST(SpscRing, ConcurrentProducerConsumer) {
  // The SPSC contract under real concurrency; the TSan job of the CI matrix
  // runs this same binary, making it the data-race oracle for the ring's
  // acquire/release protocol.
  SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kItems = 200000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t item = 0;
  while (expected < kItems) {
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(item, expected) << "SPSC ring must be FIFO";
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- PacketArena -------------------------------------------------------------

TEST(PacketArena, ViewsStayValidAcrossChunkGrowth) {
  PacketArena arena(64);  // tiny chunks force growth
  std::vector<std::string> originals;
  std::vector<BytesView> views;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    std::string payload;
    for (std::size_t j = 0; j < 1 + rng.index(40); ++j) {
      payload.push_back(static_cast<char>('A' + rng.index(26)));
    }
    const Bytes bytes = to_bytes(payload);
    views.push_back(arena.append(BytesView(bytes)));
    originals.push_back(std::move(payload));
  }
  // Every earlier view must still read back its original bytes: growth
  // chains new chunks, it never reallocates old ones.
  for (std::size_t i = 0; i < views.size(); ++i) {
    ASSERT_EQ(views[i].size(), originals[i].size());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(views[i].data()),
                          views[i].size()),
              originals[i])
        << "view " << i << " invalidated by arena growth";
  }
  EXPECT_GT(arena.bytes_reserved(), std::size_t{64}) << "growth must chain";
}

TEST(PacketArena, OversizedPayloadGetsDedicatedChunk) {
  PacketArena arena(32);
  const Bytes big(1000, std::uint8_t{0xAB});
  const BytesView view = arena.append(BytesView(big));
  ASSERT_EQ(view.size(), big.size());
  EXPECT_TRUE(std::equal(big.begin(), big.end(), view.data()));
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1000});
}

TEST(PacketArena, ResetReusesChunksWithoutFreeing) {
  PacketArena arena(128);
  const Bytes payload(100, std::uint8_t{0x42});
  for (int i = 0; i < 5; ++i) arena.append(BytesView(payload));
  const std::size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved)
      << "reset keeps chunks for reuse";
  // Refill to the same level: steady state must not grow the footprint.
  for (int i = 0; i < 5; ++i) arena.append(BytesView(payload));
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.bytes_used(), 500u);
}

TEST(PacketArena, ZeroLengthAlloc) {
  PacketArena arena(64);
  EXPECT_EQ(arena.alloc(0), nullptr);
  EXPECT_EQ(arena.bytes_used(), 0u);
}

// --- ScanPool ----------------------------------------------------------------

TEST(ScanPool, DispatchRunsEveryJobInlineAndThreaded) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ScanPool pool(workers, 8, OverloadPolicy::kBlock, ScanPool::Instruments());
    std::atomic<std::size_t> ran{0};
    pool.dispatch(&count_job, &ran, 37);
    EXPECT_EQ(ran.load(), 37u) << "workers=" << workers;
  }
}

TEST(ScanPool, ShedPolicyRefusesOnFullRing) {
  ScanPool pool(2, 1, OverloadPolicy::kShed, ScanPool::Instruments());
  StallCtx stall;
  ASSERT_TRUE(pool.submit(0, &stall_job, &stall, 0));
  while (!stall.running.load()) std::this_thread::yield();

  // Worker 0 is stuck in the stall job: one more job fits in its ring, and
  // everything after that must be refused, not queued.
  std::atomic<std::size_t> ran{0};
  std::size_t accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.submit(0, &count_job, &ran, 0)) ++accepted;
  }
  EXPECT_EQ(accepted, 1u) << "ring capacity 1 with a stalled consumer";

  // Worker 1 is idle: its ring drains, so repeated submissions all land.
  ScanPool::Completion done;
  for (int i = 0; i < 10; ++i) {
    done.expect(1);
    ASSERT_TRUE(pool.submit(1, &count_job, &ran, 0, &done));
    done.wait_zero();
  }
  stall.release.store(true);
  // The one accepted job on worker 0 still runs after the stall clears.
  while (ran.load() < accepted + 10) std::this_thread::yield();
  EXPECT_EQ(ran.load(), accepted + 10);
}

TEST(ScanPool, BlockPolicyWaitsAndCountsBackpressure) {
  obs::MetricsRegistry registry;
  ScanPool::Instruments instruments;
  instruments.blocked = &registry.counter("ingest.backpressure.blocked");
  ScanPool pool(2, 1, OverloadPolicy::kBlock, instruments);
  StallCtx stall;
  ASSERT_TRUE(pool.submit(0, &stall_job, &stall, 0));
  while (!stall.running.load()) std::this_thread::yield();

  std::atomic<std::size_t> ran{0};
  ScanPool::Completion done;
  done.expect(2);
  std::thread producer([&] {
    // First fills the ring slot, second must block until the stall lifts.
    pool.submit(0, &count_job, &ran, 0, &done);
    pool.submit(0, &count_job, &ran, 0, &done);
  });
  // Wait until the producer is provably inside the blocking wait.
  while (instruments.blocked->value() == 0) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 0u) << "stalled worker must not have run jobs";
  stall.release.store(true);
  producer.join();
  done.wait_zero();
  EXPECT_EQ(ran.load(), 2u);
  EXPECT_GE(instruments.blocked->value(), 1u);
}

// --- IngestPipeline: determinism --------------------------------------------

TEST(IngestPipeline, ByteIdenticalToSequentialScanForAllWorkerCounts) {
  const auto engine = test_engine();
  const auto trace = make_trace();
  ASSERT_GT(trace.size(), 80u);

  // Sequential reference: one engine, per-flow cursor map.
  std::vector<dpi::ScanResult> reference;
  std::map<std::uint64_t, dpi::FlowCursor> cursors;
  for (const TracePacket& p : trace) {
    dpi::FlowCursor& cursor = cursors[p.flow.canonical().hash()];
    auto result = engine->scan_packet(p.chain, BytesView(p.payload), cursor);
    if (engine->chain_stateful(p.chain)) cursor = result.cursor;
    reference.push_back(std::move(result));
  }
  const std::string expected = serialize(reference);
  ASSERT_NE(expected.find("m2{"), std::string::npos)
      << "trace must exercise stateful straddling matches";

  for (const std::size_t workers : {1u, 2u, 4u}) {
    InstanceConfig config;
    config.num_workers = workers;
    DpiInstance inst("ingest" + std::to_string(workers), config);
    inst.load_engine(engine, 1);

    IngestConfig ingest;
    ingest.batch_packets = 7;  // odd: the final flush is a partial batch
    ingest.max_batches = 3;
    std::vector<dpi::ScanResult> results;
    std::vector<std::uint64_t> refs;
    IngestPipeline pipeline(
        inst,
        [&](const BatchHandle& batch) {
          for (std::size_t i = 0; i < batch.size(); ++i) {
            results.push_back(batch.results()[i]);
            refs.push_back(batch.packet_refs()[i]);
          }
        },
        ingest);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(pipeline.push(trace[i].chain, trace[i].flow,
                                BytesView(trace[i].payload), i));
    }
    pipeline.drain();

    EXPECT_EQ(serialize(results), expected) << "workers=" << workers;
    ASSERT_EQ(refs.size(), trace.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      ASSERT_EQ(refs[i], i) << "batches must deliver in submission order";
    }
    EXPECT_EQ(pipeline.packets_pushed(), trace.size());
    EXPECT_EQ(pipeline.packets_shed(), 0u);
    EXPECT_GE(pipeline.batches_flushed(), trace.size() / ingest.batch_packets);
    EXPECT_LE(pipeline.batches_allocated(), ingest.max_batches);
    EXPECT_EQ(inst.telemetry().packets, trace.size());
  }
}

TEST(IngestPipeline, DrainOnDestructionDeliversEverything) {
  const auto engine = test_engine();
  InstanceConfig config;
  config.num_workers = 2;
  DpiInstance inst("dtor", config);
  inst.load_engine(engine, 1);
  std::size_t delivered = 0;
  {
    IngestPipeline pipeline(
        inst, [&](const BatchHandle& batch) { delivered += batch.size(); },
        IngestConfig{16, 2, 4096});
    const auto trace = make_trace(4);
    for (const TracePacket& p : trace) {
      pipeline.push(p.chain, p.flow, BytesView(p.payload));
    }
    // No flush/drain: the destructor owes us the stragglers.
  }
  EXPECT_GT(delivered, 0u);
}

// --- IngestPipeline: arena lifetime under leases -----------------------------

TEST(IngestPipeline, LeasedBatchesKeepArenaBytesValid) {
  const auto engine = test_engine();
  InstanceConfig config;
  config.num_workers = 2;
  DpiInstance inst("lease", config);
  inst.load_engine(engine, 1);

  IngestConfig ingest;
  ingest.batch_packets = 2;
  ingest.max_batches = 2;
  ingest.arena_chunk_bytes = 64;
  std::vector<BatchHandle> held;
  IngestPipeline pipeline(
      inst, [&](const BatchHandle& batch) { held.push_back(batch); }, ingest);

  const net::FiveTuple flow{net::Ipv4Addr(10, 0, 0, 1),
                            net::Ipv4Addr(10, 1, 1, 1), 1234, 80,
                            net::IpProto::kTcp};
  std::vector<std::string> payloads;
  for (int i = 0; i < 12; ++i) {
    payloads.push_back("payload-" + std::to_string(i) + "-evil");
    const Bytes bytes = to_bytes(payloads.back());
    ASSERT_TRUE(pipeline.push(1, flow, BytesView(bytes)));
  }
  pipeline.drain();

  // Every batch is leased by the sink's copies, so the pipeline had to grow
  // past max_batches instead of recycling an arena out from under a lease.
  ASSERT_EQ(held.size(), 6u);
  EXPECT_GT(pipeline.batches_allocated(), ingest.max_batches)
      << "leases must block recycling, not be overwritten";
  std::size_t seen = 0;
  for (const BatchHandle& handle : held) {
    ASSERT_TRUE(handle.valid());
    ASSERT_EQ(handle.items().size(), handle.results().size());
    for (const ScanItem& item : handle.items()) {
      const std::string got(reinterpret_cast<const char*>(item.payload.data()),
                            item.payload.size());
      ASSERT_LT(seen, payloads.size());
      EXPECT_EQ(got, payloads[seen]) << "arena bytes mutated under a lease";
      ++seen;
    }
  }
  EXPECT_EQ(seen, payloads.size());

  // Releasing the leases lets the pipeline trim back under the cap.
  held.clear();
  const Bytes more = to_bytes(std::string("one-more"));
  ASSERT_TRUE(pipeline.push(1, flow, BytesView(more)));
  pipeline.drain();
  EXPECT_LE(pipeline.batches_allocated(), ingest.max_batches)
      << "surplus batches must be trimmed once leases are gone";
}

// --- IngestPipeline: overload ------------------------------------------------

TEST(IngestOverload, ShedBoundsMemoryAndPreservesAcceptedResults) {
  const auto engine = test_engine();
  InstanceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 8;
  config.overload = OverloadPolicy::kShed;
  DpiInstance inst("shed", config);
  inst.load_engine(engine, 1);
  const net::FiveTuple flow = flow_on_shard(inst, 0);

  // Stall shard 0's worker so its batches never complete.
  StallCtx stall;
  inst.scan_pool().submit_blocking(0, &stall_job, &stall, 0);
  while (!stall.running.load()) std::this_thread::yield();

  IngestConfig ingest;
  ingest.batch_packets = 1;  // every push is its own batch
  ingest.max_batches = 3;
  std::vector<dpi::ScanResult> results;
  IngestPipeline pipeline(
      inst,
      [&](const BatchHandle& batch) {
        for (const auto& r : batch.results()) results.push_back(r);
      },
      ingest);

  // Pattern "splitpattern" straddles the first two accepted packets: the
  // accepted subset must scan with intact per-flow cursor continuity.
  const std::vector<std::string> stream = {
      "xx splitpat", "tern yy", "virus GET /", "evil", "more evil",
      "virus",       "filler",  "filler2",     "GET /", "last"};
  std::vector<Bytes> accepted;
  std::size_t shed = 0;
  for (const std::string& payload : stream) {
    const Bytes bytes = to_bytes(payload);
    if (pipeline.push(2, flow, BytesView(bytes))) {
      accepted.push_back(bytes);
    } else {
      ++shed;
    }
  }
  // Deterministic: with the worker stalled, exactly max_batches one-packet
  // batches get in flight; every later push is shed at admission.
  EXPECT_EQ(accepted.size(), ingest.max_batches);
  EXPECT_EQ(shed, stream.size() - ingest.max_batches);
  EXPECT_EQ(pipeline.packets_shed(), shed);
  EXPECT_LE(pipeline.batches_allocated(), ingest.max_batches)
      << "shed must bound memory";
  ASSERT_NE(inst.ingest_instruments().shed, nullptr);
  EXPECT_EQ(inst.ingest_instruments().shed->value(), shed);

  stall.release.store(true);
  pipeline.drain();
  ASSERT_EQ(results.size(), accepted.size());

  // The accepted subset is byte-identical to scanning exactly those packets
  // sequentially — shedding whole packets at admission never corrupts the
  // results of packets that got in.
  DpiInstance reference("shed-ref", InstanceConfig{});
  reference.load_engine(engine, 1);
  std::vector<dpi::ScanResult> expected;
  for (const Bytes& payload : accepted) {
    expected.push_back(reference.scan(2, flow, BytesView(payload)));
  }
  EXPECT_EQ(serialize(results), serialize(expected));
  ASSERT_NE(serialize(expected).find("m2{0@"), std::string::npos)
      << "straddling match must appear in the accepted subset";

  // The backpressure counters surface in the instance's stats snapshot.
  const std::string stats = json::dump(inst.stats_json());
  EXPECT_NE(stats.find("backpressure_shed"), std::string::npos);
  EXPECT_NE(stats.find("\"overload_policy\":\"shed\""), std::string::npos);
}

TEST(IngestOverload, BlockBoundsMemoryAndDeliversEverything) {
  const auto engine = test_engine();
  InstanceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 8;
  config.overload = OverloadPolicy::kBlock;
  DpiInstance inst("block", config);
  inst.load_engine(engine, 1);
  const net::FiveTuple flow = flow_on_shard(inst, 0);

  StallCtx stall;
  inst.scan_pool().submit_blocking(0, &stall_job, &stall, 0);
  while (!stall.running.load()) std::this_thread::yield();

  IngestConfig ingest;
  ingest.batch_packets = 1;
  ingest.max_batches = 3;
  std::vector<dpi::ScanResult> results;
  IngestPipeline pipeline(
      inst,
      [&](const BatchHandle& batch) {
        for (const auto& r : batch.results()) results.push_back(r);
      },
      ingest);

  std::vector<Bytes> payloads;
  Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    std::string s = "pkt" + std::to_string(i) + " ";
    switch (rng.index(3)) {
      case 0: s += "splitpattern"; break;
      case 1: s += "virus"; break;
      default: s += "noise"; break;
    }
    payloads.push_back(to_bytes(s));
  }

  // The producer outruns the stalled shard and must block, not allocate.
  std::thread producer([&] {
    for (const Bytes& payload : payloads) {
      ASSERT_TRUE(pipeline.push(2, flow, BytesView(payload)))
          << "kBlock never sheds";
    }
  });
  const obs::Counter* blocked = inst.ingest_instruments().blocked;
  ASSERT_NE(blocked, nullptr);
  while (blocked->value() == 0) std::this_thread::yield();
  stall.release.store(true);
  producer.join();
  pipeline.drain();

  EXPECT_GE(blocked->value(), 1u) << "backpressure stall must be counted";
  EXPECT_EQ(pipeline.packets_shed(), 0u);
  EXPECT_EQ(pipeline.packets_pushed(), payloads.size());
  // batches_allocated is monotonic here (trimming needs leases past the
  // cap, which this sink never takes), so the final value is the high-water
  // mark: the producer blocked instead of allocating a fourth batch.
  EXPECT_LE(pipeline.batches_allocated(), ingest.max_batches)
      << "kBlock must bound memory while the producer waits";

  DpiInstance reference("block-ref", InstanceConfig{});
  reference.load_engine(engine, 1);
  std::vector<dpi::ScanResult> expected;
  for (const Bytes& payload : payloads) {
    expected.push_back(reference.scan(2, flow, BytesView(payload)));
  }
  ASSERT_EQ(results.size(), payloads.size());
  EXPECT_EQ(serialize(results), serialize(expected))
      << "results under backpressure must stay byte-identical";
}

// --- process_batch ≡ process -------------------------------------------------

std::string serialize_output(const ProcessOutput& out) {
  std::ostringstream s;
  s << std::string(out.data.payload.begin(), out.data.payload.end()) << "|"
    << (out.data.has_match_mark() ? "M" : "-") << "|"
    << (out.data.service_header ? "H" : "-") << "|" << out.had_matches << "|";
  if (out.result) {
    s << "R" << out.result->service_header->metadata.size();
  }
  return s.str();
}

TEST(ProcessBatch, MatchesPerPacketProcess) {
  const auto engine = test_engine();
  const auto trace = make_trace(6);

  auto make_packet = [](const TracePacket& p, bool tagged) {
    net::Packet packet;
    packet.tuple = p.flow;
    packet.payload = p.payload;
    if (tagged) {
      packet.push_tag(net::TagKind::kPolicyChain,
                      static_cast<std::uint32_t>(p.chain));
    }
    return packet;
  };

  InstanceConfig seq_config;  // workers=1: the per-packet reference
  DpiInstance seq("seq", seq_config);
  seq.load_engine(engine, 1);
  InstanceConfig batch_config;
  batch_config.num_workers = 4;
  DpiInstance batched("batched", batch_config);
  batched.load_engine(engine, 1);

  std::vector<std::string> expected;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // Every 7th packet untagged: the pass-through path must batch too.
    expected.push_back(
        serialize_output(seq.process(make_packet(trace[i], i % 7 != 0))));
  }

  std::vector<std::string> got;
  const std::size_t kBatch = 16;
  for (std::size_t base = 0; base < trace.size(); base += kBatch) {
    std::vector<net::Packet> packets;
    for (std::size_t i = base; i < std::min(base + kBatch, trace.size());
         ++i) {
      packets.push_back(make_packet(trace[i], i % 7 != 0));
    }
    for (ProcessOutput& out : batched.process_batch(std::move(packets))) {
      got.push_back(serialize_output(out));
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "packet " << i;
  }
  EXPECT_EQ(batched.telemetry().packets, seq.telemetry().packets);
}

// --- batched InstanceNode through the fabric ---------------------------------

class RecorderNode : public netsim::Node {
 public:
  using Node::Node;
  void receive(net::Packet packet, const netsim::NodeId&) override {
    std::ostringstream s;
    s << std::string(packet.payload.begin(), packet.payload.end()) << "|"
      << (packet.has_match_mark() ? "M" : "-") << "|"
      << (packet.service_header
              ? std::to_string(packet.service_header->service_path_id)
              : "-");
    got.push_back(s.str());
  }
  std::vector<std::string> got;
};

TEST(InstanceNodeBatched, SameEmissionSequenceAsPerPacket) {
  const auto engine = test_engine();
  const auto trace = make_trace(6);

  auto run_mode = [&](std::size_t batch_packets) {
    InstanceConfig config;
    config.num_workers = batch_packets == 0 ? 1 : 2;
    auto instance = std::make_shared<DpiInstance>(
        "node" + std::to_string(batch_packets), config);
    instance->load_engine(engine, 1);
    netsim::Fabric fabric;
    auto& recorder = fabric.add_node<RecorderNode>("drv");
    auto& node =
        fabric.add_node<InstanceNode>("dpi", instance, batch_packets);
    fabric.connect("drv", "dpi");
    for (const TracePacket& p : trace) {
      net::Packet packet;
      packet.tuple = p.flow;
      packet.payload = p.payload;
      packet.push_tag(net::TagKind::kPolicyChain,
                      static_cast<std::uint32_t>(p.chain));
      fabric.send("drv", "dpi", std::move(packet));
    }
    fabric.run();
    EXPECT_EQ(node.pending_packets(), 0u)
        << "on_idle must flush the partial batch";
    return recorder.got;
  };

  const auto per_packet = run_mode(0);
  ASSERT_GT(per_packet.size(), trace.size())
      << "matches must produce dedicated result packets";
  // Batch size 5 does not divide the trace: the tail relies on on_idle.
  ASSERT_NE(trace.size() % 5, 0u);
  EXPECT_EQ(run_mode(5), per_packet);
  EXPECT_EQ(run_mode(64), per_packet);
}

// --- Middlebox::apply_report_batch -------------------------------------------

TEST(MiddleboxBatch, ApplyReportBatchMatchesPerPacket) {
  const auto engine = test_engine();
  const auto trace = make_trace(6);

  auto make_box = [] {
    dpi::MiddleboxProfile profile;
    profile.id = 1;
    profile.name = "ids";
    auto box = std::make_unique<mbox::Middlebox>(profile);
    box->add_rule(mbox::RuleSpec{0, "evil", mbox::Verdict::kDrop, "evil", "",
                                 false, 0});
    box->add_rule(mbox::RuleSpec{1, "get", mbox::Verdict::kShape, "GET /", "",
                                 false, 0});
    return box;
  };

  std::vector<net::FiveTuple> flows;
  std::vector<dpi::ScanResult> results;
  std::map<std::uint64_t, dpi::FlowCursor> cursors;
  for (const TracePacket& p : trace) {
    dpi::FlowCursor& cursor = cursors[p.flow.canonical().hash()];
    auto result = engine->scan_packet(p.chain, BytesView(p.payload), cursor);
    if (engine->chain_stateful(p.chain)) cursor = result.cursor;
    flows.push_back(p.flow);
    results.push_back(std::move(result));
  }

  auto batch_box = make_box();
  const std::vector<mbox::Verdict> batch_verdicts =
      batch_box->apply_report_batch(flows, results);

  auto ref_box = make_box();
  std::vector<mbox::Verdict> expected;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    net::Packet packet;
    packet.tuple = flows[i];
    packet.payload = trace[i].payload;
    const std::vector<net::MatchEntry>* entries = nullptr;
    for (const dpi::MiddleboxMatches& m : results[i].matches) {
      if (m.middlebox == 1) {
        entries = &m.entries;
        break;
      }
    }
    expected.push_back(entries == nullptr
                           ? ref_box->apply_report_entries(packet, {})
                           : ref_box->apply_report_entries(packet, *entries));
  }

  ASSERT_EQ(batch_verdicts.size(), expected.size());
  EXPECT_TRUE(std::count(expected.begin(), expected.end(),
                         mbox::Verdict::kDrop) > 0)
      << "trace must trigger at least one drop verdict";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch_verdicts[i], expected[i]) << "packet " << i;
  }
  EXPECT_EQ(batch_box->packets_processed(), ref_box->packets_processed());
  EXPECT_EQ(batch_box->total_rule_hits(), ref_box->total_rule_hits());
  EXPECT_EQ(batch_box->hits_by_rule(), ref_box->hits_by_rule());
}

TEST(MiddleboxBatch, ApplyReportBatchValidatesSizes) {
  dpi::MiddleboxProfile profile;
  profile.id = 1;
  mbox::Middlebox box(profile);
  std::vector<net::FiveTuple> flows(2);
  std::vector<dpi::ScanResult> results(3);
  EXPECT_THROW(box.apply_report_batch(flows, results), std::invalid_argument);
}

}  // namespace
}  // namespace dpisvc::service
