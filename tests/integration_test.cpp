// End-to-end integration tests: the complete system of Figure 5 running on
// the simulated fabric — TSA steering, DPI service instance, result packets,
// middlebox clients — compared against the baseline of self-scanning
// middleboxes (Figure 1a vs 1b).
#include <gtest/gtest.h>

#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/controller.hpp"
#include "service/instance_node.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc {
namespace {

using namespace dpisvc::mbox;
using namespace dpisvc::netsim;
using namespace dpisvc::service;

RuleSpec exact_rule(dpi::PatternId id, std::string pattern, Verdict verdict) {
  RuleSpec rule;
  rule.id = id;
  rule.verdict = verdict;
  rule.exact = std::move(pattern);
  return rule;
}

net::Packet flow_packet(std::string_view payload, std::uint16_t src_port,
                        std::uint16_t ip_id) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 99);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.ip_id = ip_id;
  p.payload = to_bytes(payload);
  return p;
}

/// The full Figure-2(b) setup: src -> s1 -> [dpi -> ids -> av] -> dst.
class ServiceChainFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = std::make_unique<Ids>(1, /*stateful=*/false);
    ids_->add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
    ids_->add_rule(exact_rule(2, "recon-scan", Verdict::kAlert));
    av_ = std::make_unique<AntiVirus>(2);
    av_->add_rule(exact_rule(1, "EICAR-TEST", Verdict::kQuarantine));

    ids_->attach(controller_);
    av_->attach(controller_);
    chain_ = controller_.register_policy_chain({1, 2});
    auto instance = controller_.create_instance("dpi1");
    controller_.assign_chain(chain_, "dpi1");

    fabric_.add_node<Switch>("s1");
    src_ = &fabric_.add_node<Host>("src");
    dst_ = &fabric_.add_node<Host>("dst");
    fabric_.add_node<InstanceNode>("dpi1", instance);
    ids_node_ = &fabric_.add_node<MiddleboxNode>("ids", *ids_,
                                                 NodeMode::kService);
    av_node_ = &fabric_.add_node<MiddleboxNode>("av", *av_,
                                                NodeMode::kService);
    for (const char* n : {"src", "dst", "dpi1", "ids", "av"}) {
      fabric_.connect("s1", n);
    }
    src_->set_gateway("s1");

    sdn_ = std::make_unique<SdnController>(fabric_);
    tsa_ = std::make_unique<TrafficSteeringApp>(*sdn_, "s1");
    PolicyChainSpec spec;
    spec.id = chain_;
    spec.ingress = "src";
    spec.sequence = {"dpi1", "ids", "av"};
    spec.egress = "dst";
    tsa_->install_chain(spec);
  }

  service::DpiController controller_;
  Fabric fabric_;
  Host* src_ = nullptr;
  Host* dst_ = nullptr;
  std::unique_ptr<Ids> ids_;
  std::unique_ptr<AntiVirus> av_;
  MiddleboxNode* ids_node_ = nullptr;
  MiddleboxNode* av_node_ = nullptr;
  std::unique_ptr<SdnController> sdn_;
  std::unique_ptr<TrafficSteeringApp> tsa_;
  dpi::ChainId chain_ = 0;
};

TEST_F(ServiceChainFixture, CleanPacketTraversesUntouched) {
  src_->send(flow_packet("just some ordinary content", 1000, 1));
  fabric_.run();
  ASSERT_EQ(dst_->received().size(), 1u);
  const net::Packet& delivered = dst_->received()[0];
  EXPECT_FALSE(delivered.has_match_mark());
  EXPECT_TRUE(delivered.tags.empty());  // chain tag popped at egress
  EXPECT_EQ(ids_->packets_processed(), 1u);
  EXPECT_EQ(av_->packets_processed(), 1u);
  EXPECT_EQ(ids_->total_rule_hits(), 0u);
}

TEST_F(ServiceChainFixture, MatchedPacketDeliversResultsToEachMiddlebox) {
  src_->send(flow_packet("attack-sig ... EICAR-TEST inside", 1000, 2));
  fabric_.run();
  // Both the data packet and its trailing result packet reach the egress.
  ASSERT_EQ(dst_->received().size(), 2u);
  EXPECT_TRUE(dst_->received()[0].has_match_mark());
  // IDS alerted on its rule; AV quarantined the flow — from the same single
  // scan at the DPI instance.
  ASSERT_EQ(ids_->alerts().size(), 1u);
  EXPECT_EQ(ids_->alerts()[0].rule, 1);
  EXPECT_EQ(av_->quarantined_flows(), 1u);
  // Pairing left nothing buffered.
  EXPECT_EQ(ids_node_->pending(), 0u);
  EXPECT_EQ(av_node_->pending(), 0u);
}

TEST_F(ServiceChainFixture, PacketScannedExactlyOnce) {
  src_->send(flow_packet("attack-sig", 1000, 3));
  fabric_.run();
  const auto inst = controller_.instance("dpi1");
  EXPECT_EQ(inst->telemetry().packets, 1u);
  // Middleboxes never scanned anything (no standalone engines were built);
  // they still saw the rule hit.
  EXPECT_EQ(ids_->total_rule_hits(), 1u);
}

TEST_F(ServiceChainFixture, MixedTrafficCountsAreConsistent) {
  int expected_alerts = 0;
  for (std::uint16_t i = 0; i < 40; ++i) {
    const bool evil = (i % 5 == 0);
    if (evil) ++expected_alerts;
    src_->send(flow_packet(
        evil ? "payload with attack-sig marker" : "benign payload",
        static_cast<std::uint16_t>(1000 + i % 4), i));
    fabric_.run();
  }
  EXPECT_EQ(static_cast<int>(ids_->alerts().size()), expected_alerts);
  EXPECT_EQ(ids_->packets_processed(), 40u);
  // Every data packet reached dst; matched ones brought a result packet.
  EXPECT_EQ(dst_->received().size(), 40u + expected_alerts);
}

TEST_F(ServiceChainFixture, ServiceMatchesBaselineVerdicts) {
  // Run the same traffic through a standalone (Figure 1a) deployment and
  // compare middlebox observations.
  Ids baseline_ids(1, false);
  baseline_ids.add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
  baseline_ids.add_rule(exact_rule(2, "recon-scan", Verdict::kAlert));
  AntiVirus baseline_av(2);
  baseline_av.add_rule(exact_rule(1, "EICAR-TEST", Verdict::kQuarantine));

  const char* payloads[] = {
      "attack-sig here",     "nothing at all",
      "recon-scan sweep",    "EICAR-TEST body",
      "attack-sig EICAR-TEST recon-scan", "",
  };
  std::uint16_t id = 100;
  for (const char* text : payloads) {
    const net::Packet p = flow_packet(text, 2000, id++);
    baseline_ids.process_standalone(p);
    baseline_av.process_standalone(p);
    src_->send(net::Packet(p));
    fabric_.run();
  }
  EXPECT_EQ(ids_->total_rule_hits(), baseline_ids.total_rule_hits());
  EXPECT_EQ(ids_->alerts().size(), baseline_ids.alerts().size());
  EXPECT_EQ(av_->quarantined_flows(), baseline_av.quarantined_flows());
}

TEST_F(ServiceChainFixture, FirewallDropStopsChainTraversal) {
  // Insert an L7 firewall (service mode) between DPI and IDS.
  L7Firewall fw(3);
  fw.add_rule(exact_rule(1, "blocked-proto", Verdict::kDrop));
  fw.attach(controller_);
  const dpi::ChainId chain = controller_.register_policy_chain({3, 1});
  controller_.assign_chain(chain, "dpi1");
  fabric_.add_node<MiddleboxNode>("fw", fw, NodeMode::kService);
  fabric_.connect("s1", "fw");
  // Replace the fixture's chain so the classifier is unambiguous.
  tsa_->remove_chain(chain_);
  PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"dpi1", "fw", "ids"};
  spec.egress = "dst";
  tsa_->install_chain(spec);

  src_->send(flow_packet("blocked-proto payload", 3000, 50));
  fabric_.run();
  EXPECT_EQ(fw.dropped_packets(), 1u);
  EXPECT_EQ(dst_->received().size(), 0u);  // neither data nor result leaked
  EXPECT_EQ(ids_->packets_processed(), 0u);

  src_->send(flow_packet("innocent payload", 3000, 51));
  fabric_.run();
  EXPECT_EQ(dst_->received().size(), 1u);
}

TEST(IntegrationNsh, ServiceHeaderModeDeliversInlineResults) {
  // Same chain wired in NSH mode: no dedicated result packets at all.
  service::DpiController controller;
  Ids ids(1, false);
  ids.add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  InstanceConfig config;
  config.result_mode = ResultMode::kServiceHeader;
  auto instance = controller.create_instance("dpi1", config);

  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  fabric.add_node<InstanceNode>("dpi1", instance);
  fabric.add_node<MiddleboxNode>("ids", ids, NodeMode::kService);
  for (const char* n : {"src", "dst", "dpi1", "ids"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");
  SdnController sdn(fabric);
  TrafficSteeringApp tsa(sdn, "s1");
  PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"dpi1", "ids"};
  spec.egress = "dst";
  tsa.install_chain(spec);

  src.send(flow_packet("with attack-sig inside", 1, 1));
  fabric.run();
  ASSERT_EQ(dst.received().size(), 1u);  // exactly one packet, no extras
  EXPECT_EQ(ids.alerts().size(), 1u);
  EXPECT_TRUE(dst.received()[0].service_header.has_value());
}

TEST(IntegrationMca2, AttackMitigationEndToEnd) {
  // Figure 6: normal + dedicated instances; attack traffic on one chain
  // triggers detection and the TSA redirects the chain to the dedicated
  // instance.
  StressConfig stress;
  stress.hits_per_byte_threshold = 0.02;
  stress.min_window_bytes = 512;
  stress.smoothing_windows = 1;
  service::DpiController controller(stress);

  Ids ids(1, false);
  ids.add_rule(exact_rule(1, "attacksig", Verdict::kAlert));
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto regular = controller.create_instance("regular");
  InstanceConfig ded;
  ded.dedicated = true;
  auto dedicated = controller.create_instance("dedicated", ded);
  controller.assign_chain(chain, "regular");

  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  fabric.add_node<Host>("dst");
  fabric.add_node<InstanceNode>("regular", regular);
  fabric.add_node<InstanceNode>("dedicated", dedicated);
  fabric.add_node<MiddleboxNode>("ids", ids, NodeMode::kService);
  for (const char* n : {"src", "dst", "regular", "dedicated", "ids"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");
  SdnController sdn(fabric);
  TrafficSteeringApp tsa(sdn, "s1");
  PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"regular", "ids"};
  spec.egress = "dst";
  tsa.install_chain(spec);

  // Attack wave through the regular instance.
  std::string attack;
  for (int i = 0; i < 30; ++i) attack += "attacksig";
  for (std::uint16_t i = 0; i < 20; ++i) {
    src.send(flow_packet(attack, static_cast<std::uint16_t>(i % 4), i));
    fabric.run();
  }
  controller.collect_telemetry();
  const MitigationPlan plan = controller.evaluate_mitigation();
  ASSERT_FALSE(plan.empty());
  controller.apply_mitigation(plan);
  // Realize the placement change in the data plane.
  tsa.update_sequence(chain, {"dedicated", "ids"});

  const std::uint64_t regular_packets_before =
      regular->telemetry().packets + regular->telemetry().pass_through;
  src.send(flow_packet(attack, 1, 999));
  fabric.run();
  EXPECT_EQ(regular->telemetry().packets + regular->telemetry().pass_through,
            regular_packets_before);     // regular no longer on the path
  EXPECT_GE(dedicated->telemetry().packets, 1u);  // dedicated scans now
  EXPECT_GT(ids.alerts().size(), 0u);
}

}  // namespace
}  // namespace dpisvc
