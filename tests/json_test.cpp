// Unit tests for the JSON control-plane message substrate.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace dpisvc::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-1").as_number(), 0.25);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a":{"b":[1,{"c":"d"}]},"e":[]})");
  EXPECT_EQ(v.at("a").at("b").as_array()[1].at("c").as_string(), "d");
  EXPECT_TRUE(v.at("e").as_array().empty());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("\"\\\/\b\f\n\r\t")").as_string(), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");        // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xE2\x82\xAC");    // €
  EXPECT_EQ(parse(R"("😀")").as_string(),
            "\xF0\x9F\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, EscapedSurrogatePairRoundTrip) {
  // \uXXXX surrogate pairs decode to the astral code point's UTF-8 bytes,
  // and dump() re-emits those bytes raw, so parse(dump(parse(x))) is
  // stable even though the \u spelling itself is not preserved.
  const Value grin = parse(R"("\ud83d\ude00")");  // U+1F600
  EXPECT_EQ(grin.as_string(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(parse(dump(grin)).as_string(), grin.as_string());

  // BMP boundary: U+FFFF is the last escape that needs no pair.
  const Value bmp_max = parse(R"("\uffff")");
  EXPECT_EQ(bmp_max.as_string(), "\xEF\xBF\xBF");
  EXPECT_EQ(parse(dump(bmp_max)).as_string(), bmp_max.as_string());

  // Last valid code point, U+10FFFF, via the maximal pair.
  const Value last = parse(R"("\udbff\udfff")");
  EXPECT_EQ(last.as_string(), "\xF4\x8F\xBF\xBF");
  EXPECT_EQ(parse(dump(last)).as_string(), last.as_string());

  // Mixed: a pair embedded between ASCII and a BMP \u escape.
  const Value mixed = parse(R"("a\ud83d\ude00z\u20ac")");
  EXPECT_EQ(mixed.as_string(), "a\xF0\x9F\x98\x80z\xE2\x82\xAC");
  EXPECT_EQ(parse(dump(mixed)).as_string(), mixed.as_string());
}

TEST(JsonParse, RejectsBrokenSurrogates) {
  EXPECT_THROW(parse(R"("\ud800x")"), ParseError);        // high, no low
  EXPECT_THROW(parse(R"("\ud800\ud800")"), ParseError);   // high + high
  EXPECT_THROW(parse(R"("\udc00")"), ParseError);         // lone low
  EXPECT_THROW(parse(R"("\udc00\ud800")"), ParseError);   // reversed pair
  EXPECT_THROW(parse(R"("\ud83dA")"), ParseError);   // high + BMP
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("01"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("\"bad\\q\""), ParseError);
  EXPECT_THROW(parse("\"\\ud800\""), ParseError);  // lone high surrogate
  EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), ParseError);  // duplicate key
  EXPECT_THROW(parse("{1:2}"), ParseError);
  EXPECT_THROW(parse("nul"), ParseError);
  EXPECT_THROW(parse("--1"), ParseError);
  EXPECT_THROW(parse("1."), ParseError);
  EXPECT_THROW(parse("1e"), ParseError);
}

TEST(JsonParse, RejectsControlCharInString) {
  EXPECT_THROW(parse(std::string("\"a\nb\"")), ParseError);
}

TEST(JsonParse, NestingDepthBoundary) {
  // Exactly kMaxParseDepth nested arrays parses; one more is rejected, so an
  // adversarial "[[[[..." message cannot turn recursion into stack overflow.
  const std::string at_limit = std::string(kMaxParseDepth, '[') + "1" +
                               std::string(kMaxParseDepth, ']');
  EXPECT_NO_THROW(parse(at_limit));
  const std::string over_limit = std::string(kMaxParseDepth + 1, '[') + "1" +
                                 std::string(kMaxParseDepth + 1, ']');
  EXPECT_THROW(parse(over_limit), ParseError);
  // Objects count against the same budget.
  std::string objs;
  for (std::size_t i = 0; i <= kMaxParseDepth; ++i) objs += "{\"k\":";
  objs += "1";
  objs.append(kMaxParseDepth + 1, '}');
  EXPECT_THROW(parse(objs), ParseError);
  // Depth is per-parse state, not cumulative: a wide document with many
  // shallow siblings is fine.
  EXPECT_NO_THROW(parse("[[1],[2],[3],[4],[5],[6],[7],[8]]"));
}

TEST(JsonParse, NumberOverflowIsParseError) {
  // std::stod overflow must surface as the module's ParseError, not leak
  // std::out_of_range to callers (found by fuzzing the parser).
  EXPECT_THROW(parse("1e999"), ParseError);
  EXPECT_THROW(parse("-1e999"), ParseError);
  EXPECT_NO_THROW(parse("1e308"));
}

TEST(JsonDump, CompactRoundTrip) {
  const char* docs[] = {
      R"(null)",
      R"(true)",
      R"(-42)",
      R"("x")",
      R"([1,2,[3]])",
      R"({"k":"v","n":{"a":[true,null]}})",
  };
  for (const char* doc : docs) {
    const Value v = parse(doc);
    EXPECT_EQ(dump(v), doc) << doc;
    EXPECT_TRUE(parse(dump(v)) == v) << doc;
  }
}

TEST(JsonDump, EscapesControlCharacters) {
  Value v(std::string("a\x01""b\n"));
  EXPECT_EQ(dump(v), "\"a\\u0001b\\n\"");
}

TEST(JsonDump, NumbersIntegralVsReal) {
  EXPECT_EQ(dump(Value(5)), "5");
  EXPECT_EQ(dump(Value(5.0)), "5");
  EXPECT_EQ(dump(Value(5.25)), "5.25");
  EXPECT_EQ(dump(Value(-0.5)), "-0.5");
}

TEST(JsonDump, PrettyIsReparsable) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":null}})");
  const std::string pretty = dump_pretty(v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(parse(pretty) == v);
}

TEST(JsonObject, InsertionOrderPreserved) {
  Object o = obj({{"z", 1}, {"a", 2}, {"m", 3}});
  EXPECT_EQ(dump(Value(o)), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonObject, EqualityIsOrderInsensitive) {
  const Value a = parse(R"({"x":1,"y":2})");
  const Value b = parse(R"({"y":2,"x":1})");
  EXPECT_TRUE(a == b);
}

TEST(JsonValue, TypeErrors) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), TypeError);
  EXPECT_THROW(v.as_string(), TypeError);
  EXPECT_THROW(v.as_bool(), TypeError);
  EXPECT_THROW(parse("{}").at("missing"), TypeError);
  EXPECT_THROW(parse("1.5").as_int(), TypeError);
}

TEST(JsonValue, GetOrFallback) {
  const Value v = parse(R"({"a":1})");
  const Value fallback(99);
  EXPECT_EQ(v.get_or("a", fallback).as_int(), 1);
  EXPECT_EQ(v.get_or("b", fallback).as_int(), 99);
}

TEST(JsonValue, AsIntChecksIntegrality) {
  EXPECT_EQ(parse("9007199254740992").as_int(), 9007199254740992LL);
  EXPECT_THROW(parse("0.5").as_int(), TypeError);
}

TEST(JsonBuilder, ComposesMessages) {
  // The registration message shape used by the DPI controller protocol.
  Object msg = obj({
      {"type", "register"},
      {"middlebox_id", 3},
      {"name", "ids"},
      {"stateful", true},
  });
  const std::string text = dump(Value(msg));
  const Value parsed = parse(text);
  EXPECT_EQ(parsed.at("type").as_string(), "register");
  EXPECT_EQ(parsed.at("middlebox_id").as_int(), 3);
  EXPECT_TRUE(parsed.at("stateful").as_bool());
}

}  // namespace
}  // namespace dpisvc::json
