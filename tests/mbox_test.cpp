// Tests for the middlebox framework and the concrete middlebox types.
#include <gtest/gtest.h>

#include "mbox/boxes.hpp"
#include "mbox/middlebox.hpp"
#include "service/controller.hpp"

namespace dpisvc::mbox {
namespace {

net::Packet packet_with(std::string_view payload, std::uint16_t src_port = 1) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.payload = to_bytes(payload);
  return p;
}

RuleSpec exact_rule(dpi::PatternId id, std::string pattern, Verdict verdict,
                    int rule_class = 0) {
  RuleSpec rule;
  rule.id = id;
  rule.description = "rule " + std::to_string(id);
  rule.verdict = verdict;
  rule.exact = std::move(pattern);
  rule.rule_class = rule_class;
  return rule;
}

TEST(Middlebox, RuleValidation) {
  Ids ids(1);
  ids.add_rule(exact_rule(1, "attack", Verdict::kAlert));
  EXPECT_THROW(ids.add_rule(exact_rule(1, "again", Verdict::kAlert)),
               std::invalid_argument);  // duplicate id
  RuleSpec empty;
  empty.id = 2;
  EXPECT_THROW(ids.add_rule(empty), std::invalid_argument);  // no pattern
  RuleSpec both;
  both.id = 3;
  both.exact = "x";
  both.regex = "y";
  EXPECT_THROW(ids.add_rule(both), std::invalid_argument);
  EXPECT_EQ(ids.num_rules(), 1u);
  EXPECT_NE(ids.find_rule(1), nullptr);
  EXPECT_EQ(ids.find_rule(9), nullptr);
}

TEST(Middlebox, StandaloneScanAppliesRules) {
  Ids ids(1, /*stateful=*/false);
  ids.add_rule(exact_rule(1, "attack", Verdict::kAlert, /*severity=*/3));
  ids.add_rule(exact_rule(2, "probe", Verdict::kAlert));
  const Verdict verdict =
      ids.process_standalone(packet_with("an attack and a probe"));
  EXPECT_EQ(verdict, Verdict::kAlert);
  EXPECT_EQ(ids.total_rule_hits(), 2u);
  ASSERT_EQ(ids.alerts().size(), 2u);
  EXPECT_EQ(ids.alerts()[0].rule, 1);
  EXPECT_EQ(ids.alerts()[0].severity, 3);
  EXPECT_EQ(ids.packets_processed(), 1u);
}

TEST(Middlebox, StandaloneRegexRules) {
  Ids ids(1, false);
  RuleSpec rule;
  rule.id = 5;
  rule.regex = R"(cmd=\w{4,})";
  rule.verdict = Verdict::kAlert;
  ids.add_rule(rule);
  EXPECT_EQ(ids.process_standalone(packet_with("GET /?cmd=exec HTTP")),
            Verdict::kAlert);
  EXPECT_EQ(ids.process_standalone(packet_with("GET /?cmd=a HTTP")),
            Verdict::kPass);
}

TEST(Middlebox, StandaloneStatefulSpansPackets) {
  Ids ids(1, /*stateful=*/true);
  ids.add_rule(exact_rule(1, "longattackpattern", Verdict::kAlert));
  EXPECT_EQ(ids.process_standalone(packet_with("xxlongatta", 7)),
            Verdict::kPass);
  EXPECT_EQ(ids.process_standalone(packet_with("ckpatternxx", 7)),
            Verdict::kAlert);
}

TEST(Middlebox, ApplyReportEntriesCountsRuns) {
  Ids ids(1);
  ids.add_rule(exact_rule(4, "aa", Verdict::kAlert));
  const Verdict verdict = ids.apply_report_entries(
      packet_with("irrelevant"), {net::MatchEntry{4, 2, 5}});
  EXPECT_EQ(verdict, Verdict::kAlert);
  EXPECT_EQ(ids.total_rule_hits(), 5u);  // run expands
  EXPECT_EQ(ids.hits_by_rule().at(4), 5u);
}

TEST(Middlebox, UnknownRuleInReportIgnored) {
  Ids ids(1);
  const Verdict verdict = ids.apply_report_entries(
      packet_with("x"), {net::MatchEntry{99, 1, 1}});
  EXPECT_EQ(verdict, Verdict::kPass);
  EXPECT_EQ(ids.total_rule_hits(), 0u);
}

TEST(Middlebox, AttachRegistersWithController) {
  service::DpiController controller;
  Ids ids(1);
  ids.add_rule(exact_rule(1, "attack-sig", Verdict::kAlert));
  RuleSpec rx;
  rx.id = 2;
  rx.regex = R"(botnet\d+)";
  ids.add_rule(rx);
  ids.attach(controller);
  EXPECT_TRUE(controller.db().is_registered(1));
  EXPECT_EQ(controller.db().num_distinct_exact(), 1u);
  EXPECT_EQ(controller.db().num_distinct_regex(), 1u);
  // Double-attach fails loudly (already registered).
  EXPECT_THROW(ids.attach(controller), std::runtime_error);
}

TEST(Middlebox, ServiceAndStandaloneAgree) {
  // The core service property at middlebox level: applying service-provided
  // results gives the same verdict and counters as self-scanning.
  service::DpiController controller;
  Ids service_side(1, false);
  Ids standalone(1, false);
  for (Ids* box : {&service_side, &standalone}) {
    box->add_rule(exact_rule(1, "attack", Verdict::kAlert));
    box->add_rule(exact_rule(2, "worm", Verdict::kAlert));
  }
  service_side.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto instance = controller.create_instance("i1");

  const char* payloads[] = {"an attack!", "worms attack worms", "clean", ""};
  for (const char* text : payloads) {
    net::Packet p = packet_with(text);
    const auto scan = instance->scan(
        chain, p.tuple,
        BytesView(p.payload.data(), p.payload.size()));
    std::vector<net::MatchEntry> entries;
    for (const auto& m : scan.matches) {
      if (m.middlebox == 1) entries = m.entries;
    }
    const Verdict via_service = service_side.apply_report_entries(p, entries);
    const Verdict via_scan = standalone.process_standalone(p);
    EXPECT_EQ(via_service, via_scan) << text;
  }
  EXPECT_EQ(service_side.total_rule_hits(), standalone.total_rule_hits());
  EXPECT_EQ(service_side.alerts().size(), standalone.alerts().size());
}

// --- concrete boxes ------------------------------------------------------------

TEST(Boxes, AntiVirusQuarantinesFlows) {
  AntiVirus av(2);
  av.add_rule(exact_rule(1, "EICAR-TEST", Verdict::kQuarantine));
  const net::Packet infected = packet_with("xxEICAR-TESTxx", 5);
  const net::Packet clean = packet_with("all fine", 6);
  EXPECT_EQ(av.process_standalone(infected), Verdict::kQuarantine);
  EXPECT_EQ(av.process_standalone(clean), Verdict::kPass);
  EXPECT_TRUE(av.is_quarantined(infected.tuple));
  EXPECT_FALSE(av.is_quarantined(clean.tuple));
  EXPECT_EQ(av.quarantined_flows(), 1u);
  // Direction-insensitive.
  net::FiveTuple reverse = infected.tuple;
  std::swap(reverse.src_ip, reverse.dst_ip);
  std::swap(reverse.src_port, reverse.dst_port);
  EXPECT_TRUE(av.is_quarantined(reverse));
}

TEST(Boxes, L7FirewallDrops) {
  L7Firewall fw(3);
  fw.add_rule(exact_rule(1, "forbidden", Verdict::kDrop));
  EXPECT_EQ(fw.process_standalone(packet_with("forbidden content")),
            Verdict::kDrop);
  EXPECT_EQ(fw.process_standalone(packet_with("allowed content")),
            Verdict::kPass);
  EXPECT_EQ(fw.dropped_packets(), 1u);
}

TEST(Boxes, TrafficShaperClassifiesFlows) {
  TrafficShaper shaper(4);
  shaper.add_rule(exact_rule(1, "bittorrent", Verdict::kShape, /*class=*/2));
  shaper.add_rule(exact_rule(2, "netflixcdn", Verdict::kShape, /*class=*/1));
  const net::Packet p2p = packet_with("bittorrent handshake", 10);
  const net::Packet video = packet_with("netflixcdn chunk", 11);
  const net::Packet other = packet_with("ssh session", 12);
  shaper.process_standalone(p2p);
  shaper.process_standalone(video);
  shaper.process_standalone(other);
  EXPECT_EQ(shaper.flow_class(p2p.tuple), 2);
  EXPECT_EQ(shaper.flow_class(video.tuple), 1);
  EXPECT_EQ(shaper.flow_class(other.tuple), 0);
  // Later packets of a classified flow stay in the class even if matchless.
  shaper.process_standalone(packet_with("continuation bytes", 10));
  EXPECT_EQ(shaper.packets_per_class().at(2), 2u);
  EXPECT_EQ(shaper.packets_per_class().at(0), 1u);
}

TEST(Boxes, DlpRecordsLeaks) {
  DataLeakagePrevention dlp(5);
  RuleSpec ssn;
  ssn.id = 1;
  ssn.description = "ssn";
  ssn.regex = R"(\d{3}-\d{2}-\d{4})";
  ssn.verdict = Verdict::kDrop;
  dlp.add_rule(ssn);
  dlp.add_rule(exact_rule(2, "CONFIDENTIAL", Verdict::kAlert));
  EXPECT_EQ(dlp.process_standalone(packet_with("ssn: 123-45-6789")),
            Verdict::kDrop);
  EXPECT_EQ(dlp.process_standalone(packet_with("CONFIDENTIAL report")),
            Verdict::kAlert);
  ASSERT_EQ(dlp.leaks().size(), 2u);
  EXPECT_EQ(dlp.leaks()[0].description, "ssn");
}

TEST(Boxes, L7LoadBalancerPinsFlowsToBackends) {
  L7LoadBalancer lb(6, /*num_backends=*/3);
  lb.add_rule(exact_rule(1, "GET /api/", Verdict::kPass, /*backend=*/1));
  lb.add_rule(exact_rule(2, "GET /static/", Verdict::kPass, /*backend=*/2));
  const net::Packet api = packet_with("GET /api/users HTTP/1.1", 20);
  const net::Packet assets = packet_with("GET /static/app.js HTTP/1.1", 21);
  const net::Packet root = packet_with("GET / HTTP/1.1", 22);
  lb.process_standalone(api);
  lb.process_standalone(assets);
  lb.process_standalone(root);
  EXPECT_EQ(lb.backend_for(api.tuple), 1u);
  EXPECT_EQ(lb.backend_for(assets.tuple), 2u);
  EXPECT_EQ(lb.backend_for(root.tuple), 0u);
  EXPECT_EQ(lb.packets_per_backend()[1], 1u);
}

TEST(Boxes, VerdictNames) {
  EXPECT_STREQ(verdict_name(Verdict::kPass), "pass");
  EXPECT_STREQ(verdict_name(Verdict::kDrop), "drop");
  EXPECT_STREQ(verdict_name(Verdict::kQuarantine), "quarantine");
}

}  // namespace
}  // namespace dpisvc::mbox
