// Seeded-bug "teeth" tests for the dpisvc_mc model checker (DESIGN.md §7):
// two real, historical bug shapes are re-introduced into the SHIPPED
// templates via compile-time fault hooks, and the checker must find each
// one in bounded exploration with a replayable schedule.
//
// ODR safety: both fault macros are consumed inside templates keyed on the
// Sync parameter (kSpscPublishOrder<Sync> is a variable template;
// Completion::finish_one is a member of the BasicScanPool<Sync> class
// template), and this TU instantiates them ONLY over the TU-local FaultSync
// tag below. Every other TU in the binary — including the dpisvc_mc library
// this links against — sees only the RealSync/ModelSync specializations,
// which have exactly one (un-faulted) definition.
#define DPISVC_SPSC_PUBLISH_ORDER_RELAXED 1
#define DPISVC_MC_FAULT_COMPLETION_NOTIFY 1

#include <gtest/gtest.h>

#include "mc/model_sync.hpp"
#include "mc/scenarios.hpp"
#include "mc/scheduler.hpp"

namespace {

using dpisvc::mc::ExploreResult;
using dpisvc::mc::Explorer;

/// TU-local sync tag: the faulted template specializations exist only for
/// this type, so they cannot collide with the library's instantiations.
struct FaultSync : dpisvc::mc::ModelSync {};

// Seeded bug 1: the producer's tail publish demoted from release to
// relaxed. The consumer's acquire of tail_ then reads a store that carries
// no happens-before edge, so its non-atomic slot read races with the
// producer's slot write — MC002, found exhaustively, schedule replayable.
TEST(McFaultTest, RelaxedRingPublishFoundAsDataRace) {
  const auto body = [] {
    dpisvc::mc::scenarios::ring_spsc_body<FaultSync>(/*capacity=*/2,
                                                     /*items=*/2);
  };
  Explorer explorer;
  const ExploreResult res = explorer.explore(body);
  ASSERT_FALSE(res.ok()) << "seeded relaxed publish must be detected";
  EXPECT_EQ(res.bug->code, "MC002");
  EXPECT_FALSE(res.bug->schedule.empty());
  EXPECT_FALSE(res.bug->schedule_text.empty());

  Explorer replayer;
  const ExploreResult rep = replayer.replay(body, res.bug->schedule);
  ASSERT_FALSE(rep.ok());
  // Same diagnostic class; the message embeds the racing address, which is
  // a fresh allocation in the replaying Explorer.
  EXPECT_EQ(rep.bug->code, "MC002");
}

// Seeded bug 2: Completion::finish_one signalling AFTER releasing the
// mutex (the pre-PR9 shape). The waiter can then observe remaining_ == 0,
// return from wait_zero(), and destroy the stack latch while the
// finisher's notify is still in flight — a use-after-destroy on the
// latch's CondVar, MC003, with the destroy and the late notify both
// visible in the printed schedule.
TEST(McFaultTest, NotifyAfterUnlockFoundAsUseAfterDestroy) {
  const auto body = [] {
    dpisvc::mc::scenarios::completion_latch_body<FaultSync>();
  };
  Explorer explorer;
  const ExploreResult res = explorer.explore(body);
  ASSERT_FALSE(res.ok()) << "seeded notify-after-unlock must be detected";
  EXPECT_EQ(res.bug->code, "MC003");
  EXPECT_FALSE(res.bug->schedule.empty());
  EXPECT_FALSE(res.bug->schedule_text.empty());

  Explorer replayer;
  const ExploreResult rep = replayer.replay(body, res.bug->schedule);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.bug->code, "MC003");
}

// The un-faulted control for both bodies lives in mc_test.cpp (the
// ring_spsc and completion_latch registry scenarios verify clean over
// ModelSync). It must NOT be duplicated here: instantiating the ModelSync
// specializations from this macro-defining TU would be the exact ODR
// violation the FaultSync tag exists to prevent.

}  // namespace
