// Tests for the dpisvc_mc model checker (DESIGN.md §7): every registered
// scenario must verify exhaustively over the SHIPPED primitives, and the
// checker's own detectors must have teeth — a weak-memory litmus test and a
// lost-wakeup deadlock are seeded inline and must be found, with the
// reported schedule replaying deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "mc/model_sync.hpp"
#include "mc/scenario.hpp"
#include "mc/scheduler.hpp"

namespace {

using dpisvc::mc::ExploreOptions;
using dpisvc::mc::ExploreResult;
using dpisvc::mc::Explorer;
using dpisvc::mc::ModelSync;
using dpisvc::mc::ScenarioInfo;

TEST(McRegistryTest, ScenariosAreRegisteredWithUniqueNames) {
  const auto& registry = dpisvc::mc::scenario_registry();
  ASSERT_GE(registry.size(), 7u);
  std::set<std::string> names;
  for (const ScenarioInfo& s : registry) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(static_cast<bool>(s.body));
    EXPECT_EQ(dpisvc::mc::find_scenario(s.name), &s);
  }
}

TEST(McRegistryTest, UnknownScenarioLookupReturnsNull) {
  EXPECT_EQ(dpisvc::mc::find_scenario("no_such_scenario"), nullptr);
}

// The acceptance bar of the tentpole: every shipped concurrency contract is
// enumerated to exhaustion (within its registered bound) with zero
// diagnostics. interleavings > 0 guards against a vacuous pass.
TEST(McRegistryTest, EveryScenarioVerifiesToExhaustion) {
  for (const ScenarioInfo& s : dpisvc::mc::scenario_registry()) {
    Explorer explorer(s.options);
    const ExploreResult res = explorer.explore(s.body);
    EXPECT_TRUE(res.ok()) << s.name << ": " << res.bug->code << " "
                          << res.bug->message;
    EXPECT_TRUE(res.exhausted) << s.name;
    EXPECT_FALSE(res.hit_execution_bound) << s.name;
    EXPECT_GT(res.executions, 0u) << s.name;
    EXPECT_GT(res.transitions, res.executions) << s.name;
  }
}

// Message-passing litmus: a release publish makes the preceding data store
// visible to the acquire reader — zero counterexamples, exhausted.
TEST(McExplorerTest, MessagePassingReleaseAcquireVerifies) {
  const auto body = [] {
    ModelSync::Atomic<int> data{0};
    ModelSync::Atomic<int> flag{0};
    ModelSync::Thread reader([&] {
      while (flag.load(std::memory_order_acquire) != 1) ModelSync::yield();
      dpisvc::mc::require(data.load(std::memory_order_relaxed) == 42,
                          "acquire of flag must publish data");
    });
    data.store(7, std::memory_order_relaxed);   // stale decoy
    data.store(42, std::memory_order_relaxed);  // the published value
    flag.store(1, std::memory_order_release);
    reader.join();
  };
  Explorer explorer;
  const ExploreResult res = explorer.explore(body);
  EXPECT_TRUE(res.ok()) << res.bug->code << " " << res.bug->message;
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.executions, 1u);
}

// The same litmus with a RELAXED publish must be refuted: the reader may
// see flag == 1 yet read the stale data store (no happens-before edge), so
// the checker reports MC001 — and replaying the printed schedule reproduces
// the exact same diagnostic.
TEST(McExplorerTest, MessagePassingRelaxedPublishRefutedAndReplayable) {
  const auto body = [] {
    ModelSync::Atomic<int> data{0};
    ModelSync::Atomic<int> flag{0};
    ModelSync::Thread reader([&] {
      while (flag.load(std::memory_order_acquire) != 1) ModelSync::yield();
      dpisvc::mc::require(data.load(std::memory_order_relaxed) == 42,
                          "relaxed publish loses the data store");
    });
    data.store(7, std::memory_order_relaxed);
    data.store(42, std::memory_order_relaxed);
    flag.store(1, std::memory_order_relaxed);  // BUG: not release
    reader.join();
  };
  Explorer explorer;
  const ExploreResult res = explorer.explore(body);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.bug->code, "MC001");
  EXPECT_FALSE(res.bug->schedule.empty());
  EXPECT_FALSE(res.bug->schedule_text.empty());

  Explorer replayer;
  const ExploreResult rep = replayer.replay(body, res.bug->schedule);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.bug->code, "MC001");
  EXPECT_EQ(rep.bug->message, res.bug->message);  // no addresses in MC001
}

// Lost wakeup: notify_one fired before the waiter parks is dropped, and the
// modeled cv wait never times out — so the interleaving where the signal
// races ahead of the wait is a deadlock (MC004), not a 1ms hiccup. This is
// the detector the pool's park/wake scenario leans on.
TEST(McExplorerTest, LostWakeupSurfacesAsDeadlock) {
  const auto body = [] {
    ModelSync::Mutex mu;
    ModelSync::CondVar cv;
    bool ready = false;
    ModelSync::Thread notifier([&] {
      ready = true;     // BUG: not under mu
      cv.notify_one();  // BUG: may fire before the waiter parks
    });
    {
      ModelSync::MutexLock lock(mu);
      while (!ready) cv.wait(lock);
    }
    notifier.join();
  };
  Explorer explorer;
  const ExploreResult res = explorer.explore(body);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.bug->code, "MC004");
  EXPECT_FALSE(res.bug->schedule_text.empty());
}

// Exploration bounds are honored and reported: a one-execution cap on a
// multi-interleaving scenario must come back not-exhausted.
TEST(McExplorerTest, ExecutionBoundReported) {
  const ScenarioInfo* s = dpisvc::mc::find_scenario("ring_capacity_one");
  ASSERT_NE(s, nullptr);
  ExploreOptions opts = s->options;
  opts.max_executions = 1;
  Explorer explorer(opts);
  const ExploreResult res = explorer.explore(s->body);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.executions, 1u);
  EXPECT_TRUE(res.hit_execution_bound);
  EXPECT_FALSE(res.exhausted);
}

}  // namespace
