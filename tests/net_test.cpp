// Tests for the packet layer: addresses, flow keys, wire round-trips, tag
// handling, and the match-report codecs of §6.5.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "net/addr.hpp"
#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/result.hpp"

namespace dpisvc::net {
namespace {

// --- addresses -------------------------------------------------------------

TEST(Addr, Ipv4RoundTrip) {
  const Ipv4Addr a(10, 0, 0, 1);
  EXPECT_EQ(a.to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr::parse("10.0.0.1"), a);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255").value, 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0").value, 0u);
}

TEST(Addr, Ipv4ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Addr::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4Addr::parse("1.2.3.4 "), std::invalid_argument);
}

TEST(Addr, MacRoundTrip) {
  const MacAddr m = MacAddr::parse("de:ad:be:ef:00:42");
  EXPECT_EQ(m.value, 0xDEADBEEF0042ULL);
  EXPECT_EQ(m.to_string(), "de:ad:be:ef:00:42");
}

TEST(Addr, MacParseRejectsMalformed) {
  EXPECT_THROW(MacAddr::parse("de:ad:be:ef:00"), std::invalid_argument);
  EXPECT_THROW(MacAddr::parse("de-ad-be-ef-00-42"), std::invalid_argument);
  EXPECT_THROW(MacAddr::parse("zz:ad:be:ef:00:42"), std::invalid_argument);
}

// --- flow keys ----------------------------------------------------------------

FiveTuple tuple(const char* src, std::uint16_t sp, const char* dst,
                std::uint16_t dp, IpProto proto = IpProto::kTcp) {
  return FiveTuple{Ipv4Addr::parse(src), Ipv4Addr::parse(dst), sp, dp, proto};
}

TEST(Flow, CanonicalIsDirectionInsensitive) {
  const FiveTuple fwd = tuple("10.0.0.1", 12345, "10.0.0.2", 80);
  FiveTuple rev = fwd;
  std::swap(rev.src_ip, rev.dst_ip);
  std::swap(rev.src_port, rev.dst_port);
  EXPECT_EQ(fwd.canonical(), rev.canonical());
  EXPECT_EQ(fwd.canonical().hash(), rev.canonical().hash());
}

TEST(Flow, DistinctFlowsHashDifferently) {
  const FiveTuple a = tuple("10.0.0.1", 1000, "10.0.0.2", 80);
  const FiveTuple b = tuple("10.0.0.1", 1001, "10.0.0.2", 80);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Flow, CanonicalIsIdempotent) {
  const FiveTuple t = tuple("192.168.1.9", 443, "10.0.0.1", 55000);
  EXPECT_EQ(t.canonical().canonical(), t.canonical());
}

// --- packet wire round-trip -------------------------------------------------------

Packet sample_packet() {
  Packet p;
  p.src_mac = MacAddr::parse("02:00:00:00:00:01");
  p.dst_mac = MacAddr::parse("02:00:00:00:00:02");
  p.tuple = tuple("10.0.0.1", 34567, "93.184.216.34", 80);
  p.tcp_seq = 0xABCD1234;
  p.payload = to_bytes("GET /index.html HTTP/1.1\r\nHost: example\r\n\r\n");
  return p;
}

TEST(Packet, WireRoundTripPlain) {
  const Packet p = sample_packet();
  const Bytes wire = p.to_wire();
  EXPECT_EQ(wire.size(), p.wire_size());
  const Packet q = Packet::from_wire(wire);
  EXPECT_EQ(q.tuple, p.tuple);
  EXPECT_EQ(q.payload, p.payload);
  EXPECT_EQ(q.src_mac, p.src_mac);
  EXPECT_EQ(q.dst_mac, p.dst_mac);
  EXPECT_EQ(q.tcp_seq, p.tcp_seq);
  EXPECT_TRUE(q.tags.empty());
  EXPECT_FALSE(q.service_header.has_value());
}

TEST(Packet, WireRoundTripWithTagsAndNsh) {
  Packet p = sample_packet();
  p.push_tag(TagKind::kVlan, 42);
  p.push_tag(TagKind::kPolicyChain, 7);  // outermost
  p.set_match_mark(true);
  ServiceHeader sh;
  sh.service_path_id = 99;
  sh.service_index = 3;
  sh.metadata = {1, 2, 3, 4, 5};
  p.service_header = sh;

  const Packet q = Packet::from_wire(p.to_wire());
  ASSERT_EQ(q.tags.size(), 2u);
  EXPECT_EQ(q.tags[0], (Tag{TagKind::kPolicyChain, 7u}));
  EXPECT_EQ(q.tags[1], (Tag{TagKind::kVlan, 42u}));
  EXPECT_TRUE(q.has_match_mark());
  ASSERT_TRUE(q.service_header.has_value());
  EXPECT_EQ(*q.service_header, sh);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, WireRoundTripUdp) {
  Packet p = sample_packet();
  p.tuple.proto = IpProto::kUdp;
  const Packet q = Packet::from_wire(p.to_wire());
  EXPECT_EQ(q.tuple, p.tuple);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, EmptyPayloadRoundTrip) {
  Packet p = sample_packet();
  p.payload.clear();
  const Packet q = Packet::from_wire(p.to_wire());
  EXPECT_TRUE(q.payload.empty());
}

TEST(Packet, FromWireRejectsCorruption) {
  const Packet p = sample_packet();
  Bytes wire = p.to_wire();
  // Truncation.
  EXPECT_THROW(Packet::from_wire(BytesView(wire.data(), 10)),
               std::invalid_argument);
  // IP checksum corruption.
  Bytes bad = wire;
  bad[14 + 12] ^= 0xFF;  // src IP byte inside the IP header
  EXPECT_THROW(Packet::from_wire(bad), std::invalid_argument);
  // Unknown ethertype.
  Bytes weird = wire;
  weird[12] = 0x12;
  weird[13] = 0x34;
  EXPECT_THROW(Packet::from_wire(weird), std::invalid_argument);
  // Trailing garbage breaks the length check.
  Bytes trailing = wire;
  trailing.push_back(0xAA);
  EXPECT_THROW(Packet::from_wire(trailing), std::invalid_argument);
}

TEST(Packet, FragmentFieldsRoundTrip) {
  Packet p = sample_packet();
  p.frag_offset = 0x123;  // 8-byte units
  p.more_fragments = true;
  p.ip_id = 0xBEEF;
  const Packet q = Packet::from_wire(p.to_wire());
  EXPECT_EQ(q.frag_offset, 0x123u);
  EXPECT_TRUE(q.more_fragments);
  EXPECT_EQ(q.ip_id, 0xBEEF);
  EXPECT_TRUE(q.is_fragment());
  EXPECT_NE(q.summary().find("frag"), std::string::npos);
}

TEST(Packet, LastFragmentRoundTrip) {
  Packet p = sample_packet();
  p.frag_offset = 7;  // offset without MF: the final fragment
  p.more_fragments = false;
  const Packet q = Packet::from_wire(p.to_wire());
  EXPECT_EQ(q.frag_offset, 7u);
  EXPECT_FALSE(q.more_fragments);
  EXPECT_TRUE(q.is_fragment());
}

TEST(Packet, UnfragmentedWireFormatKeepsDf) {
  // Pre-fragmentation frames carried DF; an unfragmented packet must still
  // produce the byte-exact old encoding (and reject DF+fragment input).
  const Packet p = sample_packet();
  EXPECT_FALSE(p.is_fragment());
  const Bytes wire = p.to_wire();
  EXPECT_EQ(wire[14 + 6] & 0x40, 0x40);  // DF bit in the flags byte
  // DF on a fragment must be rejected (checksum fixed up so the DF check,
  // not the checksum check, is what trips).
  Packet frag = p;
  frag.frag_offset = 1;
  Bytes frag_wire = frag.to_wire();
  frag_wire[14 + 6] |= 0x40;  // DF on a fragment
  frag_wire[14 + 10] = 0;
  frag_wire[14 + 11] = 0;
  std::uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += static_cast<std::uint32_t>(frag_wire[14 + i]) << 8 |
           frag_wire[14 + i + 1];
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const std::uint16_t ck = static_cast<std::uint16_t>(~sum);
  frag_wire[14 + 10] = static_cast<std::uint8_t>(ck >> 8);
  frag_wire[14 + 11] = static_cast<std::uint8_t>(ck & 0xFF);
  EXPECT_THROW(Packet::from_wire(frag_wire), std::invalid_argument);
}

TEST(Packet, ToWireRejectsOversizedFragOffset) {
  Packet p = sample_packet();
  p.frag_offset = 0x2000;  // beyond the 13-bit field
  EXPECT_THROW(p.to_wire(), std::invalid_argument);
}

// --- IP defragmentation ------------------------------------------------------

Packet frag_base(std::uint16_t ip_id) {
  Packet p = sample_packet();
  p.ip_id = ip_id;
  return p;
}

TEST(Defrag, SplitAndReassembleRoundTrip) {
  Packet p = frag_base(7);
  p.payload = to_bytes("0123456789abcdef0123456789abcdefTAIL");
  const auto frags = fragment_packet(p, 16);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_EQ(frags[0].frag_offset, 0u);
  EXPECT_TRUE(frags[0].more_fragments);
  EXPECT_EQ(frags[1].frag_offset, 2u);  // 16 bytes / 8
  EXPECT_FALSE(frags[2].more_fragments);

  IpDefragmenter defrag;
  std::optional<Packet> full;
  for (const Packet& f : frags) {
    full = defrag.feed(f);
    if (&f != &frags.back()) {
      EXPECT_FALSE(full.has_value());
    }
  }
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->payload, p.payload);
  EXPECT_EQ(full->tuple, p.tuple);
  EXPECT_EQ(full->tcp_seq, p.tcp_seq);
  EXPECT_FALSE(full->is_fragment());
  EXPECT_EQ(defrag.stats().datagrams_completed, 1u);
  EXPECT_EQ(defrag.pending_datagrams(), 0u);
}

TEST(Defrag, OutOfOrderFragmentsReassemble) {
  Packet p = frag_base(8);
  p.payload = to_bytes("0123456789abcdef0123456789abcdefTAIL");
  auto frags = fragment_packet(p, 16);
  std::reverse(frags.begin(), frags.end());
  IpDefragmenter defrag;
  std::optional<Packet> full;
  for (const Packet& f : frags) full = defrag.feed(f);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->payload, p.payload);
}

TEST(Defrag, NonFragmentPassesThrough) {
  IpDefragmenter defrag;
  const Packet p = frag_base(9);
  const auto out = defrag.feed(p);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, p.payload);
  EXPECT_EQ(defrag.stats().fragments, 0u);
}

TEST(Defrag, TinyFragmentPoisonsDatagram) {
  // 8-byte non-final fragments are below the default min_fragment (16):
  // the classic tiny-fragment evasion fails closed.
  Packet p = frag_base(10);
  p.payload = to_bytes("0123456789abcdefREST");
  const auto frags = fragment_packet(p, 8);
  IpDefragmenter defrag;
  std::optional<Packet> full;
  for (const Packet& f : frags) full = defrag.feed(f);
  EXPECT_FALSE(full.has_value());
  EXPECT_GE(defrag.stats().rejected_tiny, 1u);
  EXPECT_EQ(defrag.stats().datagrams_completed, 0u);
}

TEST(Defrag, TeardropBoundsRejected) {
  // A final fragment claiming the datagram ends inside data already held.
  Packet first = frag_base(11);
  first.payload = Bytes(32, 'a');
  first.frag_offset = 0;
  first.more_fragments = true;
  Packet last = frag_base(11);
  last.payload = Bytes(8, 'b');
  last.frag_offset = 2;  // ends at byte 24 < 32 already written
  last.more_fragments = false;
  IpDefragmenter defrag;
  EXPECT_FALSE(defrag.feed(first).has_value());
  EXPECT_FALSE(defrag.feed(last).has_value());
  EXPECT_EQ(defrag.stats().rejected_bounds, 1u);
  EXPECT_EQ(defrag.stats().datagrams_completed, 0u);
}

TEST(Defrag, OversizeDatagramRejected) {
  DefragConfig config;
  config.max_datagram = 64;
  IpDefragmenter defrag(config);
  Packet f = frag_base(12);
  f.payload = Bytes(32, 'x');
  f.frag_offset = 8;  // bytes 64..96 > max_datagram
  f.more_fragments = true;
  EXPECT_FALSE(defrag.feed(f).has_value());
  EXPECT_EQ(defrag.stats().rejected_bounds, 1u);
}

TEST(Defrag, ConflictingOverlapFollowsPolicy) {
  auto run = [](OverlapPolicy policy) {
    DefragConfig config;
    config.overlap_policy = policy;
    IpDefragmenter defrag(config);
    Packet a = frag_base(13);
    a.payload = Bytes(16, 'A');
    a.frag_offset = 0;
    a.more_fragments = true;
    Packet dup = a;
    dup.payload = Bytes(16, 'B');  // same range, different bytes
    Packet last = frag_base(13);
    last.payload = Bytes(8, 'Z');
    last.frag_offset = 2;
    last.more_fragments = false;
    defrag.feed(a);
    defrag.feed(dup);
    return std::make_pair(defrag.feed(last), defrag.stats());
  };

  auto [first_full, first_stats] = run(OverlapPolicy::kFirstWins);
  ASSERT_TRUE(first_full.has_value());
  EXPECT_EQ(first_full->payload[0], 'A');
  EXPECT_EQ(first_stats.ambiguous_fragments, 1u);
  EXPECT_EQ(first_stats.conflicting_bytes, 16u);

  auto [last_full, last_stats] = run(OverlapPolicy::kLastWins);
  ASSERT_TRUE(last_full.has_value());
  EXPECT_EQ(last_full->payload[0], 'B');

  auto [reject_full, reject_stats] = run(OverlapPolicy::kRejectAmbiguous);
  EXPECT_FALSE(reject_full.has_value());  // poisoned: never completes
  EXPECT_EQ(reject_stats.datagrams_completed, 0u);
}

TEST(Defrag, IdleEvictionReclaimsIncompleteDatagrams) {
  DefragConfig config;
  config.idle_timeout_feeds = 4;
  IpDefragmenter defrag(config);
  Packet f = frag_base(14);
  f.payload = Bytes(16, 'x');
  f.more_fragments = true;
  defrag.feed(f);
  EXPECT_EQ(defrag.pending_datagrams(), 1u);
  for (int i = 0; i < 6; ++i) defrag.tick();
  EXPECT_EQ(defrag.pending_datagrams(), 0u);
  EXPECT_EQ(defrag.stats().evicted_incomplete, 1u);
}

TEST(Defrag, CapacityEvictionDropsLru) {
  DefragConfig config;
  config.max_datagrams = 2;
  IpDefragmenter defrag(config);
  for (std::uint16_t id = 1; id <= 3; ++id) {
    Packet f = frag_base(id);
    f.payload = Bytes(16, 'x');
    f.more_fragments = true;
    defrag.feed(f);
  }
  EXPECT_EQ(defrag.pending_datagrams(), 2u);
  EXPECT_EQ(defrag.stats().evicted_incomplete, 1u);
}

TEST(Defrag, FragmentPacketRejectsBadMtu) {
  const Packet p = frag_base(15);
  EXPECT_THROW(fragment_packet(p, 4), std::invalid_argument);
}

TEST(Packet, TagStackOperations) {
  Packet p;
  EXPECT_FALSE(p.find_tag(TagKind::kPolicyChain).has_value());
  p.push_tag(TagKind::kPolicyChain, 5);
  p.push_tag(TagKind::kMpls, 1000);
  EXPECT_EQ(p.find_tag(TagKind::kPolicyChain), 5u);
  EXPECT_EQ(p.find_tag(TagKind::kMpls), 1000u);
  EXPECT_TRUE(p.pop_tag(TagKind::kMpls));
  EXPECT_FALSE(p.pop_tag(TagKind::kMpls));
  EXPECT_EQ(p.tags.size(), 1u);
}

TEST(Packet, MatchMarkIsEcnBit) {
  Packet p;
  EXPECT_FALSE(p.has_match_mark());
  p.set_match_mark(true);
  EXPECT_TRUE(p.has_match_mark());
  EXPECT_EQ(p.ecn & 1, 1);
  p.set_match_mark(false);
  EXPECT_FALSE(p.has_match_mark());
}

// --- match-report codecs (§6.5) ------------------------------------------------------

MatchReport sample_report() {
  MatchReport r;
  r.policy_chain_id = 3;
  r.packet_ref = 0x1122334455667788ULL;
  r.sections.push_back(MiddleboxSection{
      1, {MatchEntry{10, 100, 1}, MatchEntry{11, 200, 5}}});
  r.sections.push_back(MiddleboxSection{4, {MatchEntry{7, 64, 1}}});
  return r;
}

TEST(Result, RoundTripCompact) {
  const MatchReport r = sample_report();
  EXPECT_EQ(decode_report(encode_report(r, ReportCodec::kCompact)), r);
}

TEST(Result, RoundTripUniform6) {
  const MatchReport r = sample_report();
  EXPECT_EQ(decode_report(encode_report(r, ReportCodec::kUniform6)), r);
}

TEST(Result, CompactSingleMatchIsFourBytes) {
  MatchReport r;
  r.sections.push_back(MiddleboxSection{1, {MatchEntry{5, 1000, 1}}});
  const Bytes compact = encode_report(r, ReportCodec::kCompact);
  MatchReport r2 = r;
  r2.sections[0].entries[0].run_length = 3;
  const Bytes ranged = encode_report(r2, ReportCodec::kCompact);
  EXPECT_EQ(ranged.size() - compact.size(), 2u);  // 6-byte vs 4-byte entry
}

TEST(Result, Uniform6IsSixBytesPerEntry) {
  MatchReport empty;
  empty.sections.push_back(MiddleboxSection{1, {}});
  MatchReport one = empty;
  one.sections[0].entries.push_back(MatchEntry{1, 1, 1});
  MatchReport range = empty;
  range.sections[0].entries.push_back(MatchEntry{1, 1, 250});
  const std::size_t base = encode_report(empty, ReportCodec::kUniform6).size();
  EXPECT_EQ(encode_report(one, ReportCodec::kUniform6).size(), base + 6);
  EXPECT_EQ(encode_report(range, ReportCodec::kUniform6).size(), base + 6);
}

TEST(Result, CompactRejectsWidePatternId) {
  MatchReport r;
  r.sections.push_back(MiddleboxSection{1, {MatchEntry{0x8000, 1, 1}}});
  EXPECT_THROW(encode_report(r, ReportCodec::kCompact), std::invalid_argument);
  EXPECT_NO_THROW(encode_report(r, ReportCodec::kUniform6));
}

TEST(Result, RejectsOutOfRangeFields) {
  MatchReport r;
  r.sections.push_back(MiddleboxSection{1, {MatchEntry{1, 1u << 24, 1}}});
  EXPECT_THROW(encode_report(r, ReportCodec::kUniform6), std::invalid_argument);
  r.sections[0].entries[0] = MatchEntry{1, 1, 300};
  EXPECT_THROW(encode_report(r, ReportCodec::kUniform6), std::invalid_argument);
  r.sections[0].entries[0] = MatchEntry{1, 1, 0};
  EXPECT_THROW(encode_report(r, ReportCodec::kUniform6), std::invalid_argument);
}

TEST(Result, DecodeRejectsMalformed) {
  const Bytes good = encode_report(sample_report(), ReportCodec::kUniform6);
  EXPECT_THROW(decode_report(BytesView(good.data(), 3)), std::out_of_range);
  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_report(bad_magic), std::invalid_argument);
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(decode_report(trailing), std::invalid_argument);
}

TEST(Result, EmptyReportHelpers) {
  MatchReport r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.total_entries(), 0u);
  r.sections.push_back(MiddleboxSection{1, {}});
  EXPECT_TRUE(r.empty());
  r.sections.push_back(MiddleboxSection{2, {MatchEntry{1, 1, 1}}});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.total_entries(), 1u);
}

TEST(Result, CompressRunsMergesConsecutive) {
  // Pattern 5 matches at 10,11,12 (self-repeating pattern case, §6.5);
  // pattern 6 at 12; pattern 5 again at 20.
  const std::vector<std::pair<std::uint16_t, std::uint32_t>> raw = {
      {5, 10}, {5, 11}, {5, 12}, {5, 20}, {6, 12}};
  const auto entries = compress_runs(raw);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (MatchEntry{5, 10, 3}));
  EXPECT_EQ(entries[1], (MatchEntry{5, 20, 1}));
  EXPECT_EQ(entries[2], (MatchEntry{6, 12, 1}));
}

TEST(Result, CompressRunsSplitsAt256) {
  std::vector<std::pair<std::uint16_t, std::uint32_t>> raw;
  for (std::uint32_t i = 0; i < 300; ++i) {
    raw.emplace_back(1, 100 + i);
  }
  const auto entries = compress_runs(raw);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].run_length, 256u);
  EXPECT_EQ(entries[1].run_length, 44u);
  EXPECT_EQ(entries[1].position, 356u);
}

TEST(Result, RandomizedRoundTripProperty) {
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 100; ++iter) {
    MatchReport r;
    r.policy_chain_id = static_cast<std::uint16_t>(rng.uniform(0, 0xFFFF));
    r.packet_ref = rng.next();
    const std::size_t sections = rng.index(4);
    for (std::size_t s = 0; s < sections; ++s) {
      MiddleboxSection section;
      section.middlebox_id = static_cast<std::uint16_t>(rng.uniform(1, 64));
      const std::size_t entries = rng.index(10);
      for (std::size_t e = 0; e < entries; ++e) {
        section.entries.push_back(MatchEntry{
            static_cast<std::uint16_t>(rng.uniform(0, 0x7FFF)),
            static_cast<std::uint32_t>(rng.uniform(0, (1u << 24) - 1)),
            static_cast<std::uint32_t>(rng.uniform(1, 256))});
      }
      r.sections.push_back(std::move(section));
    }
    for (ReportCodec codec : {ReportCodec::kCompact, ReportCodec::kUniform6}) {
      EXPECT_EQ(decode_report(encode_report(r, codec)), r);
    }
  }
}

}  // namespace
}  // namespace dpisvc::net
