// Tests for the simulated SDN fabric: links, switches, flow rules, TSA
// steering.
#include <gtest/gtest.h>

#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"

namespace dpisvc::netsim {
namespace {

net::Packet make_packet(std::uint16_t dst_port = 80) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = 12345;
  p.tuple.dst_port = dst_port;
  p.payload = to_bytes("payload");
  return p;
}

/// A node that records traversal and passes packets back to the sender.
class Bouncer : public Node {
 public:
  Bouncer(Fabric& fabric, NodeId name) : Node(fabric, std::move(name)) {}

  void receive(net::Packet packet, const NodeId& from) override {
    ++seen_;
    emit(from, std::move(packet));
  }

  std::uint64_t seen() const noexcept { return seen_; }

 private:
  std::uint64_t seen_ = 0;
};

TEST(Fabric, RejectsDuplicateNames) {
  Fabric fabric;
  fabric.add_node<Host>("h1");
  EXPECT_THROW(fabric.add_node<Host>("h1"), std::invalid_argument);
}

TEST(Fabric, ConnectValidatesNodes) {
  Fabric fabric;
  fabric.add_node<Host>("h1");
  EXPECT_THROW(fabric.connect("h1", "nope"), std::invalid_argument);
  EXPECT_THROW(fabric.connect("h1", "h1"), std::invalid_argument);
  fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  EXPECT_TRUE(fabric.linked("h1", "h2"));
  EXPECT_TRUE(fabric.linked("h2", "h1"));
  EXPECT_FALSE(fabric.linked("h1", "h3"));
}

TEST(Fabric, SendRequiresLink) {
  Fabric fabric;
  fabric.add_node<Host>("h1");
  fabric.add_node<Host>("h2");
  EXPECT_THROW(fabric.send("h1", "h2", make_packet()), std::logic_error);
}

TEST(Fabric, DeliversInFifoOrder) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  for (std::uint16_t i = 0; i < 5; ++i) {
    net::Packet p = make_packet();
    p.ip_id = i;
    h1.send(std::move(p));
  }
  EXPECT_EQ(fabric.run(), 5u);
  ASSERT_EQ(h2.received().size(), 5u);
  for (std::uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h2.received()[i].ip_id, i);
  }
}

TEST(Fabric, LoopGuardTrips) {
  Fabric fabric;
  fabric.add_node<Bouncer>("b1");
  fabric.add_node<Bouncer>("b2");
  fabric.connect("b1", "b2");
  fabric.send("b1", "b2", make_packet());
  EXPECT_THROW(fabric.run(/*max_events=*/100), std::runtime_error);
}

TEST(Fabric, HostWithoutGatewayThrows) {
  Fabric fabric;
  Host& h = fabric.add_node<Host>("h");
  EXPECT_THROW(h.send(make_packet()), std::logic_error);
}

TEST(Switch, HighestPriorityRuleWins) {
  Fabric fabric;
  Switch& sw = fabric.add_node<Switch>("s1");
  Host& a = fabric.add_node<Host>("a");
  Host& b = fabric.add_node<Host>("b");
  fabric.add_node<Host>("src");
  fabric.connect("s1", "a");
  fabric.connect("s1", "b");
  fabric.connect("s1", "src");

  FlowRule low;
  low.priority = 1;
  low.action.forward_to = "a";
  sw.install(low);
  FlowRule high;
  high.priority = 5;
  high.match.dst_port = 443;
  high.action.forward_to = "b";
  sw.install(high);

  fabric.send("src", "s1", make_packet(80));
  fabric.send("src", "s1", make_packet(443));
  fabric.run();
  EXPECT_EQ(a.received().size(), 1u);
  EXPECT_EQ(b.received().size(), 1u);
  EXPECT_EQ(sw.forwarded(), 2u);
}

TEST(Switch, TableMissDrops) {
  Fabric fabric;
  Switch& sw = fabric.add_node<Switch>("s1");
  fabric.add_node<Host>("src");
  fabric.connect("s1", "src");
  fabric.send("src", "s1", make_packet());
  fabric.run();
  EXPECT_EQ(sw.dropped(), 1u);
  EXPECT_EQ(sw.forwarded(), 0u);
}

TEST(Switch, MatchFields) {
  net::Packet p = make_packet(80);
  p.push_tag(net::TagKind::kPolicyChain, 7);

  Match m;
  EXPECT_TRUE(m.matches(p, "any"));  // wildcard matches everything
  m.chain_tag = 7;
  EXPECT_TRUE(m.matches(p, "any"));
  m.chain_tag = 8;
  EXPECT_FALSE(m.matches(p, "any"));
  m = Match{};
  m.in_node = "left";
  EXPECT_TRUE(m.matches(p, "left"));
  EXPECT_FALSE(m.matches(p, "right"));
  m = Match{};
  m.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  m.proto = net::IpProto::kTcp;
  EXPECT_TRUE(m.matches(p, "x"));
  m.proto = net::IpProto::kUdp;
  EXPECT_FALSE(m.matches(p, "x"));
}

TEST(Switch, TagPushPopActions) {
  Fabric fabric;
  Switch& sw = fabric.add_node<Switch>("s1");
  Host& out = fabric.add_node<Host>("out");
  fabric.add_node<Host>("in");
  fabric.connect("s1", "out");
  fabric.connect("s1", "in");

  FlowRule push;
  push.priority = 2;
  push.match.in_node = "in";
  push.action.forward_to = "out";
  push.action.push_chain_tag = 9;
  sw.install(push);

  fabric.send("in", "s1", make_packet());
  fabric.run();
  ASSERT_EQ(out.received().size(), 1u);
  EXPECT_EQ(out.received()[0].find_tag(net::TagKind::kPolicyChain), 9u);
}

// --- fault injection -------------------------------------------------------------

TEST(FaultInjection, SeededDropIsLossyAndReproducible) {
  auto run_once = [](std::uint64_t seed) {
    Fabric fabric;
    Host& h1 = fabric.add_node<Host>("h1");
    Host& h2 = fabric.add_node<Host>("h2");
    fabric.connect("h1", "h2");
    h1.set_gateway("h2");
    fabric.set_fault_seed(seed);
    LinkFaults faults;
    faults.drop = 0.5;
    fabric.set_link_faults("h1", "h2", faults);
    for (std::uint16_t i = 0; i < 200; ++i) {
      net::Packet p = make_packet();
      p.ip_id = i;
      h1.send(std::move(p));
    }
    fabric.run();
    // Conservation: every send was either delivered or counted as dropped.
    EXPECT_EQ(h2.received().size() + fabric.fault_stats().dropped, 200u);
    EXPECT_GT(fabric.fault_stats().dropped, 0u);
    EXPECT_LT(fabric.fault_stats().dropped, 200u);
    return h2.received().size();
  };
  EXPECT_EQ(run_once(42), run_once(42));  // same seed, same losses
}

TEST(FaultInjection, DuplicateDeliversExtraCopies) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  LinkFaults faults;
  faults.duplicate = 1.0;
  fabric.set_link_faults("h1", "h2", faults);
  for (int i = 0; i < 10; ++i) h1.send(make_packet());
  fabric.run();
  EXPECT_EQ(h2.received().size(), 20u);
  EXPECT_EQ(fabric.fault_stats().duplicated, 10u);
}

TEST(FaultInjection, DelayedPacketsAllEventuallyArrive) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  LinkFaults faults;
  faults.delay = 1.0;
  faults.max_delay_events = 16;
  fabric.set_link_faults("h1", "h2", faults);
  for (int i = 0; i < 25; ++i) h1.send(make_packet());
  fabric.run();  // the drain must release every held packet
  EXPECT_EQ(h2.received().size(), 25u);
  EXPECT_EQ(fabric.fault_stats().delayed, 25u);
}

TEST(FaultInjection, ReorderShufflesButConserves) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  fabric.set_fault_seed(7);
  LinkFaults faults;
  faults.reorder = 1.0;
  fabric.set_link_faults("h1", "h2", faults);
  for (std::uint16_t i = 0; i < 50; ++i) {
    net::Packet p = make_packet();
    p.ip_id = i;
    h1.send(std::move(p));
  }
  fabric.run();
  ASSERT_EQ(h2.received().size(), 50u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < h2.received().size(); ++i) {
    if (h2.received()[i].ip_id < h2.received()[i - 1].ip_id) {
      out_of_order = true;
      break;
    }
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_GT(fabric.fault_stats().reordered, 0u);
}

TEST(FaultInjection, PartitionDropsUntilHealed) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  EXPECT_TRUE(fabric.link_up("h1", "h2"));
  fabric.fail_link("h1", "h2");
  EXPECT_FALSE(fabric.link_up("h1", "h2"));
  h1.send(make_packet());
  fabric.run();
  EXPECT_EQ(h2.received().size(), 0u);
  EXPECT_EQ(fabric.fault_stats().partition_drops, 1u);
  fabric.heal_link("h1", "h2");
  h1.send(make_packet());
  fabric.run();
  EXPECT_EQ(h2.received().size(), 1u);
  EXPECT_THROW(fabric.fail_link("h1", "ghost"), std::invalid_argument);
}

TEST(FaultInjection, CrashedNodeDiscardsInFlightTraffic) {
  Fabric fabric;
  Host& h1 = fabric.add_node<Host>("h1");
  Host& h2 = fabric.add_node<Host>("h2");
  fabric.connect("h1", "h2");
  h1.set_gateway("h2");
  h1.send(make_packet());   // in flight before the crash
  fabric.crash_node("h2");
  EXPECT_TRUE(fabric.crashed("h2"));
  h1.send(make_packet());   // sent while crashed
  fabric.run();
  EXPECT_EQ(h2.received().size(), 0u);
  EXPECT_EQ(fabric.fault_stats().crash_discards, 2u);
  fabric.restore_node("h2");
  h1.send(make_packet());
  fabric.run();
  EXPECT_EQ(h2.received().size(), 1u);
  EXPECT_THROW(fabric.crash_node("ghost"), std::invalid_argument);
}

// --- TSA steering ---------------------------------------------------------------

TEST(Tsa, SteersThroughChainInOrder) {
  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  Bouncer& m1 = fabric.add_node<Bouncer>("m1");
  Bouncer& m2 = fabric.add_node<Bouncer>("m2");
  for (const char* n : {"src", "dst", "m1", "m2"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec chain;
  chain.id = 3;
  chain.ingress = "src";
  chain.sequence = {"m1", "m2"};
  chain.egress = "dst";
  tsa.install_chain(chain);

  src.send(make_packet());
  fabric.run();
  EXPECT_EQ(m1.seen(), 1u);
  EXPECT_EQ(m2.seen(), 1u);
  ASSERT_EQ(dst.received().size(), 1u);
  // The chain tag was popped before egress: the original packet is restored.
  EXPECT_FALSE(
      dst.received()[0].find_tag(net::TagKind::kPolicyChain).has_value());
}

TEST(Tsa, EmptyChainGoesStraightToEgress) {
  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  fabric.connect("s1", "src");
  fabric.connect("s1", "dst");
  src.set_gateway("s1");

  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec chain;
  chain.id = 1;
  chain.ingress = "src";
  chain.egress = "dst";
  tsa.install_chain(chain);

  src.send(make_packet());
  fabric.run();
  ASSERT_EQ(dst.received().size(), 1u);
  EXPECT_TRUE(dst.received()[0].tags.empty());
}

TEST(Tsa, ClassifierSplitsTrafficAcrossChains) {
  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  Bouncer& http_box = fabric.add_node<Bouncer>("http_box");
  Bouncer& other_box = fabric.add_node<Bouncer>("other_box");
  for (const char* n : {"src", "dst", "http_box", "other_box"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec http_chain;
  http_chain.id = 1;
  http_chain.ingress = "src";
  http_chain.classifier.dst_port = 80;
  http_chain.sequence = {"http_box"};
  http_chain.egress = "dst";
  tsa.install_chain(http_chain);
  PolicyChainSpec other_chain;
  other_chain.id = 2;
  other_chain.ingress = "src";
  other_chain.sequence = {"other_box"};
  other_chain.egress = "dst";
  tsa.install_chain(other_chain);

  src.send(make_packet(80));    // HTTP chain
  src.send(make_packet(4444));  // default chain
  fabric.run();
  EXPECT_EQ(http_box.seen(), 1u);
  EXPECT_EQ(other_box.seen(), 1u);
  EXPECT_EQ(dst.received().size(), 2u);
}

TEST(Tsa, UpdateSequenceRedirectsTraffic) {
  Fabric fabric;
  fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  Bouncer& before = fabric.add_node<Bouncer>("before");
  Bouncer& after = fabric.add_node<Bouncer>("after");
  for (const char* n : {"src", "dst", "before", "after"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec chain;
  chain.id = 1;
  chain.ingress = "src";
  chain.sequence = {"before"};
  chain.egress = "dst";
  tsa.install_chain(chain);

  src.send(make_packet());
  fabric.run();
  EXPECT_EQ(before.seen(), 1u);

  tsa.update_sequence(1, {"after"});
  src.send(make_packet());
  fabric.run();
  EXPECT_EQ(before.seen(), 1u);  // unchanged
  EXPECT_EQ(after.seen(), 1u);
  EXPECT_EQ(dst.received().size(), 2u);
}

TEST(Tsa, RemoveChainStopsSteering) {
  Fabric fabric;
  Switch& sw = fabric.add_node<Switch>("s1");
  Host& src = fabric.add_node<Host>("src");
  Host& dst = fabric.add_node<Host>("dst");
  fabric.connect("s1", "src");
  fabric.connect("s1", "dst");
  src.set_gateway("s1");

  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec chain;
  chain.id = 1;
  chain.ingress = "src";
  chain.egress = "dst";
  tsa.install_chain(chain);
  EXPECT_TRUE(tsa.remove_chain(1));
  EXPECT_FALSE(tsa.remove_chain(1));

  src.send(make_packet());
  fabric.run();
  EXPECT_EQ(dst.received().size(), 0u);
  EXPECT_EQ(sw.dropped(), 1u);
}

TEST(Tsa, RejectsChainWithoutEndpoints) {
  Fabric fabric;
  fabric.add_node<Switch>("s1");
  SdnController controller(fabric);
  TrafficSteeringApp tsa(controller, "s1");
  PolicyChainSpec chain;
  chain.id = 1;
  EXPECT_THROW(tsa.install_chain(chain), std::invalid_argument);
}

TEST(SdnController, RejectsNonSwitchTargets) {
  Fabric fabric;
  fabric.add_node<Host>("h1");
  SdnController controller(fabric);
  EXPECT_THROW(controller.install("h1", FlowRule{}), std::invalid_argument);
  EXPECT_THROW(controller.install("ghost", FlowRule{}), std::invalid_argument);
}

}  // namespace
}  // namespace dpisvc::netsim
