// Unit tests for the observability instruments (obs/metrics.hpp) and the
// scan trace ring (obs/trace.hpp): bucket-boundary semantics, percentile
// extraction, cross-shard merging, registry snapshots, and ring wraparound.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpisvc::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddNegative) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 10}), std::invalid_argument);
  EXPECT_THROW(Histogram({10, 5}), std::invalid_argument);
}

// Bucket i holds bounds[i-1] < v <= bounds[i]: a value exactly on a bound
// belongs to that bound's bucket, one past it to the next.
TEST(HistogramTest, BucketBoundariesAreInclusiveUpper) {
  Histogram h({10, 20, 30});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 finite + overflow
  h.record(0);
  h.record(10);   // on the first bound -> bucket 0
  h.record(11);   // one past -> bucket 1
  h.record(20);   // bucket 1
  h.record(21);   // bucket 2
  h.record(30);   // bucket 2
  h.record(31);   // overflow
  h.record(1000); // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 20 + 21 + 30 + 31 + 1000);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h({10});
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, PercentileWalksRanks) {
  Histogram h({10, 20, 30, 40});
  // 100 samples uniform over bucket 1 (11..20).
  for (int i = 0; i < 100; ++i) h.record(15);
  // All mass is in bucket 1, so every quantile lands inside (10, 20].
  EXPECT_GT(h.percentile(0.01), 10.0);
  EXPECT_LE(h.percentile(0.99), 20.0);
  EXPECT_LT(h.percentile(0.10), h.percentile(0.90));
}

TEST(HistogramTest, PercentileAcrossBuckets) {
  Histogram h({10, 20, 30});
  for (int i = 0; i < 50; ++i) h.record(5);   // bucket 0
  for (int i = 0; i < 50; ++i) h.record(25);  // bucket 2
  // p25 lies in bucket 0, p75 in bucket 2.
  EXPECT_LE(h.percentile(0.25), 10.0);
  EXPECT_GT(h.percentile(0.75), 20.0);
  EXPECT_LE(h.percentile(0.75), 30.0);
}

// Overflow-bucket quantiles report the last finite bound: a floor, never a
// made-up extrapolation.
TEST(HistogramTest, OverflowPercentileReportsLastBound) {
  Histogram h({10, 20});
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  EXPECT_EQ(h.percentile(0.5), 20.0);
  EXPECT_EQ(h.percentile(0.99), 20.0);
}

TEST(HistogramTest, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(1000, 2.0, 5);
  const std::vector<std::uint64_t> expected = {1000, 2000, 4000, 8000, 16000};
  EXPECT_EQ(bounds, expected);
  EXPECT_THROW(Histogram::exponential_bounds(0, 2.0, 5),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(10, 1.0, 5),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(10, 2.0, 0),
               std::invalid_argument);
  // The default latency ladder is valid histogram input.
  const Histogram ladder(Histogram::latency_bounds_ns());
  EXPECT_GE(ladder.num_buckets(), 10u);
}

TEST(HistogramTest, MergeFromAddsCounts) {
  Histogram a({10, 20});
  Histogram b({10, 20});
  a.record(5);
  b.record(15);
  b.record(25);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 45u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  Histogram c({10, 30});
  EXPECT_THROW(a.merge_from(c), std::invalid_argument);
}

TEST(HistogramTest, JsonShape) {
  Histogram h({10, 20});
  h.record(5);
  const json::Value v = h.to_json();
  EXPECT_EQ(v.at("count").as_int(), 1);
  EXPECT_EQ(v.at("sum").as_int(), 5);
  EXPECT_EQ(v.at("bounds").as_array().size(), 2u);
  EXPECT_EQ(v.at("counts").as_array().size(), 3u);
  EXPECT_TRUE(v.at("p50").is_number());
}

TEST(RegistryTest, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("packets");
  Counter& b = reg.counter("packets");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("packets").value(), 3u);
  // First registration wins on histogram bounds.
  Histogram& h1 = reg.histogram("lat", {10, 20});
  Histogram& h2 = reg.histogram("lat", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  EXPECT_EQ(reg.find_histogram("lat"), &h1);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(RegistryTest, SnapshotSortedAndResettable) {
  MetricsRegistry reg;
  reg.counter("zzz").add(1);
  reg.counter("aaa").add(2);
  reg.gauge("depth").set(7);
  reg.histogram("lat", {10}).record(3);
  const json::Value snap = reg.snapshot();
  const json::Object& counters = snap.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  // Emitted name-sorted regardless of registration order.
  EXPECT_EQ(counters.begin()->first, "aaa");
  EXPECT_EQ(snap.at("gauges").at("depth").as_int(), 7);
  EXPECT_EQ(snap.at("histograms").at("lat").at("count").as_int(), 1);
  reg.reset();
  EXPECT_EQ(reg.counter("zzz").value(), 0u);
  EXPECT_EQ(reg.gauge("depth").value(), 0);
  EXPECT_EQ(reg.find_histogram("lat")->count(), 0u);
}

TEST(RegistryTest, ConcurrentWritesDontLoseCounts) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("lat", Histogram::latency_bounds_ns());
  constexpr int kThreads = 4;
  constexpr int kPer = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kPer; ++i) {
        c.add(1);
        h.record(1500);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  ScanTrace trace;  // capacity 0
  EXPECT_FALSE(trace.enabled());
  trace.record(TraceEvent::kPacketIn, 1, 0, 0, 0, 0);
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(TraceTest, RingWrapsAndCountsDrops) {
  ScanTrace trace(4);
  ASSERT_TRUE(trace.enabled());
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.record(TraceEvent::kDfaScan, /*flow=*/i, /*offset=*/i * 100,
                 /*value=*/i, /*shard=*/0, /*chain=*/1);
  }
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest -> newest: the last four records survive, in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].flow, 6u + i);
    EXPECT_EQ(events[i].seq, 7u + i);  // seq is 1-based record index
  }
}

TEST(TraceTest, JsonAndClear) {
  ScanTrace trace(8);
  trace.record(TraceEvent::kPacketIn, 42, 0, 128, 2, 9);
  trace.record(TraceEvent::kVerdict, 42, 128, 1, 2, 9);
  const json::Value v = trace.to_json();
  EXPECT_EQ(v.at("capacity").as_int(), 8);
  EXPECT_EQ(v.at("total").as_int(), 2);
  EXPECT_EQ(v.at("dropped").as_int(), 0);
  const json::Array& events = v.at("events").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("event").as_string(), "packet_in");
  EXPECT_EQ(events[1].at("event").as_string(), "verdict");
  trace.clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(TraceTest, EventNames) {
  EXPECT_STREQ(trace_event_name(TraceEvent::kPacketIn), "packet_in");
  EXPECT_STREQ(trace_event_name(TraceEvent::kShardDispatch), "shard_dispatch");
  EXPECT_STREQ(trace_event_name(TraceEvent::kDfaScan), "dfa_scan");
  EXPECT_STREQ(trace_event_name(TraceEvent::kRegexEval), "regex_eval");
  EXPECT_STREQ(trace_event_name(TraceEvent::kVerdict), "verdict");
}

}  // namespace
}  // namespace dpisvc::obs
