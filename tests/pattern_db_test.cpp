// Tests for the controller-side pattern registry: registration, ref-counted
// pattern sharing and removal (§4.1), inheritance, snapshot compilation.
#include <gtest/gtest.h>

#include "dpi/engine.hpp"
#include "dpi/pattern_db.hpp"

namespace dpisvc::dpi {
namespace {

MiddleboxProfile mbox(MiddleboxId id, const char* name) {
  MiddleboxProfile p;
  p.id = id;
  p.name = name;
  return p;
}

TEST(PatternDb, RegisterAndQuery) {
  PatternDb db;
  db.register_middlebox(mbox(1, "ids"));
  EXPECT_TRUE(db.is_registered(1));
  EXPECT_FALSE(db.is_registered(2));
  ASSERT_NE(db.profile(1), nullptr);
  EXPECT_EQ(db.profile(1)->name, "ids");
  EXPECT_EQ(db.num_middleboxes(), 1u);
}

TEST(PatternDb, RejectsDuplicateAndOutOfRangeIds) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  EXPECT_THROW(db.register_middlebox(mbox(1, "b")), std::invalid_argument);
  EXPECT_THROW(db.register_middlebox(mbox(0, "z")), std::invalid_argument);
  EXPECT_THROW(db.register_middlebox(mbox(65, "z")), std::invalid_argument);
}

TEST(PatternDb, SharedPatternSingleEntry) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.register_middlebox(mbox(2, "b"));
  db.add_exact(1, 10, "attack");
  db.add_exact(2, 77, "attack");
  EXPECT_EQ(db.num_distinct_exact(), 1u);
  EXPECT_EQ(db.num_references(1), 1u);
  EXPECT_EQ(db.num_references(2), 1u);
}

TEST(PatternDb, RefCountedRemoval) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.register_middlebox(mbox(2, "b"));
  db.add_exact(1, 10, "attack");
  db.add_exact(2, 77, "attack");
  // Removing middlebox 1's reference keeps the pattern alive for 2 (§4.1).
  EXPECT_TRUE(db.remove_exact(1, 10));
  EXPECT_EQ(db.num_distinct_exact(), 1u);
  // Removing the last reference drops the pattern.
  EXPECT_TRUE(db.remove_exact(2, 77));
  EXPECT_EQ(db.num_distinct_exact(), 0u);
  EXPECT_FALSE(db.remove_exact(2, 77));
}

TEST(PatternDb, InternalIdsStableAcrossOtherMutations) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.add_exact(1, 0, "first");
  db.add_exact(1, 1, "second");
  const auto id_first = db.internal_id_of_exact("first");
  ASSERT_TRUE(id_first.has_value());
  db.remove_exact(1, 1);
  EXPECT_EQ(db.internal_id_of_exact("first"), id_first);
  EXPECT_FALSE(db.internal_id_of_exact("second").has_value());
}

TEST(PatternDb, SameRuleIdDifferentBytesRejected) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.add_exact(1, 5, "aaaa");
  EXPECT_THROW(db.add_exact(1, 5, "bbbb"), std::invalid_argument);
  // Re-adding the same (middlebox, rule) pair is a duplicate even when the
  // bytes are identical.
  EXPECT_THROW(db.add_exact(1, 5, "aaaa"), PatternDbError);
}

TEST(PatternDb, DuplicateRulePairRejectedWithTypedError) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.add_exact(1, 5, "aaaa");
  try {
    db.add_exact(1, 5, "aaaa");
    FAIL() << "expected PatternDbError";
  } catch (const PatternDbError& e) {
    EXPECT_EQ(e.code(), PatternDbError::Code::kDuplicateRule);
  }
  // The pair is claimed across both tables: an exact registration blocks a
  // regex one under the same rule id, and vice versa.
  EXPECT_THROW(db.add_regex(1, 5, "evil"), PatternDbError);
  db.add_regex(1, 6, "evil");
  EXPECT_THROW(db.add_exact(1, 6, "bytes"), PatternDbError);
  // Distinct middlebox or rule id is still fine.
  db.register_middlebox(mbox(2, "b"));
  EXPECT_NO_THROW(db.add_exact(2, 5, "aaaa"));
  EXPECT_NO_THROW(db.add_exact(1, 7, "aaaa"));
  EXPECT_TRUE(db.has_rule(1, 5));
  EXPECT_TRUE(db.has_rule(1, 6));
  EXPECT_FALSE(db.has_rule(2, 6));
}

TEST(PatternDb, OversizedPatternRejectedWithTypedError) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  const std::string at_limit(kMaxPatternBytes, 'x');
  EXPECT_NO_THROW(db.add_exact(1, 0, at_limit));
  const std::string over_limit(kMaxPatternBytes + 1, 'x');
  try {
    db.add_exact(1, 1, over_limit);
    FAIL() << "expected PatternDbError";
  } catch (const PatternDbError& e) {
    EXPECT_EQ(e.code(), PatternDbError::Code::kPatternTooLong);
  }
  EXPECT_THROW(db.add_regex(1, 1, over_limit), PatternDbError);
  // A rejected add leaves no reference behind.
  EXPECT_FALSE(db.has_rule(1, 1));
}

TEST(PatternDb, RegexRefCounting) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.register_middlebox(mbox(2, "b"));
  db.add_regex(1, 0, R"(evil\d+)");
  db.add_regex(2, 0, R"(evil\d+)");
  EXPECT_EQ(db.num_distinct_regex(), 1u);
  // Same expression with different flags is a distinct pattern.
  db.add_regex(1, 1, R"(evil\d+)", /*case_insensitive=*/true);
  EXPECT_EQ(db.num_distinct_regex(), 2u);
  EXPECT_TRUE(db.remove_regex(1, 0));
  EXPECT_EQ(db.num_distinct_regex(), 2u);  // mbox 2 still refers
  EXPECT_TRUE(db.remove_regex(2, 0));
  EXPECT_EQ(db.num_distinct_regex(), 1u);
}

TEST(PatternDb, UnregisterScrubsReferences) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.register_middlebox(mbox(2, "b"));
  db.add_exact(1, 0, "shared");
  db.add_exact(2, 0, "shared");
  db.add_exact(1, 1, "only-a");
  db.set_chain(1, {1, 2});
  EXPECT_TRUE(db.unregister_middlebox(1));
  EXPECT_FALSE(db.is_registered(1));
  EXPECT_EQ(db.num_distinct_exact(), 1u);  // "only-a" gone, "shared" lives
  EXPECT_FALSE(db.unregister_middlebox(1));
  // Chain keeps remaining members.
  const EngineSpec spec = db.snapshot();
  ASSERT_EQ(spec.chains.at(1).size(), 1u);
  EXPECT_EQ(spec.chains.at(1)[0], 2);
}

TEST(PatternDb, InheritCopiesReferences) {
  PatternDb db;
  db.register_middlebox(mbox(1, "parent"));
  db.register_middlebox(mbox(2, "child"));
  db.add_exact(1, 0, "alpha");
  db.add_exact(1, 1, "beta");
  db.add_regex(1, 2, R"(gamma\d)");
  db.inherit_patterns(2, 1);
  EXPECT_EQ(db.num_references(2), 3u);
  EXPECT_EQ(db.num_distinct_exact(), 2u);  // still shared entries
  // Child's references are independent: removing parent's keeps child's.
  db.remove_exact(1, 0);
  EXPECT_EQ(db.num_distinct_exact(), 2u);
  const EngineSpec spec = db.snapshot();
  int child_exact = 0;
  for (const auto& p : spec.exact_patterns) {
    if (p.middlebox == 2) ++child_exact;
  }
  EXPECT_EQ(child_exact, 2);
}

TEST(PatternDb, InheritRequiresRegisteredBoth) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  EXPECT_THROW(db.inherit_patterns(2, 1), std::invalid_argument);
  EXPECT_THROW(db.inherit_patterns(1, 2), std::invalid_argument);
}

TEST(PatternDb, ChainManagement) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  db.set_chain(5, {1});
  EXPECT_THROW(db.set_chain(6, {1, 9}), std::invalid_argument);
  EXPECT_TRUE(db.remove_chain(5));
  EXPECT_FALSE(db.remove_chain(5));
}

TEST(PatternDb, VersionBumpsOnMutations) {
  PatternDb db;
  const auto v0 = db.version();
  db.register_middlebox(mbox(1, "a"));
  const auto v1 = db.version();
  EXPECT_GT(v1, v0);
  db.add_exact(1, 0, "pat1");
  const auto v2 = db.version();
  EXPECT_GT(v2, v1);
  db.remove_exact(1, 0);
  EXPECT_GT(db.version(), v2);
  // A failed removal does not bump.
  const auto v3 = db.version();
  EXPECT_FALSE(db.remove_exact(1, 0));
  EXPECT_EQ(db.version(), v3);
}

TEST(PatternDb, SnapshotCompilesAndScans) {
  PatternDb db;
  db.register_middlebox(mbox(1, "ids"));
  db.register_middlebox(mbox(2, "av"));
  db.add_exact(1, 0, "virus");
  db.add_exact(2, 0, "virus");
  db.add_exact(2, 1, "worm");
  db.add_regex(1, 1, R"(botnet\d+)");
  db.set_chain(1, {1, 2});
  auto engine = Engine::compile(db.snapshot());
  const std::string text = "a virus and a worm and botnet99";
  const auto result = engine->scan_packet(
      1, BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()));
  std::size_t total = 0;
  for (const auto& m : result.matches) total += m.entries.size();
  EXPECT_EQ(total, 4u);  // virus x2 middleboxes, worm, botnet regex
}

TEST(PatternDb, AddForUnregisteredMiddleboxThrows) {
  PatternDb db;
  EXPECT_THROW(db.add_exact(1, 0, "x"), std::invalid_argument);
  EXPECT_THROW(db.add_regex(1, 0, "x"), std::invalid_argument);
}

TEST(PatternDb, EmptyPatternRejected) {
  PatternDb db;
  db.register_middlebox(mbox(1, "a"));
  EXPECT_THROW(db.add_exact(1, 0, ""), std::invalid_argument);
  EXPECT_THROW(db.add_regex(1, 0, ""), std::invalid_argument);
}

}  // namespace
}  // namespace dpisvc::dpi
