// Tests for TCP stream reassembly: ordering, overlaps, wraparound, limits —
// including the property that reassembled+stateful-scanned traffic detects
// exactly the matches of the in-order stream.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "dpi/engine.hpp"
#include "net/reassembly.hpp"

namespace dpisvc::net {
namespace {

Bytes payload_of(std::string_view text) { return to_bytes(text); }

TEST(StreamReassembler, InOrderBytesReleased) {
  StreamReassembler stream(1000);
  EXPECT_EQ(stream.accept(1000, payload_of("hello ")), 6u);
  EXPECT_EQ(stream.accept(1006, payload_of("world")), 5u);
  const Bytes ready = stream.pop_ready();
  EXPECT_EQ(to_string(ready), "hello world");
  EXPECT_EQ(stream.expected_seq(), 1011u);
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(StreamReassembler, OutOfOrderBuffersUntilGapFills) {
  StreamReassembler stream(0);
  stream.accept(6, payload_of("world"));
  EXPECT_TRUE(stream.pop_ready().empty());
  EXPECT_EQ(stream.buffered_bytes(), 5u);
  stream.accept(0, payload_of("hello "));
  EXPECT_EQ(to_string(stream.pop_ready()), "hello world");
  EXPECT_EQ(stream.buffered_bytes(), 0u);
}

TEST(StreamReassembler, MultipleGapsFillInAnyOrder) {
  StreamReassembler stream(0);
  stream.accept(8, payload_of("cc"));
  stream.accept(4, payload_of("bb"));
  stream.accept(2, payload_of("aa"));
  EXPECT_TRUE(stream.pop_ready().empty());
  stream.accept(0, payload_of("00"));
  EXPECT_EQ(to_string(stream.pop_ready()), "00aabb");  // 6..7 still missing
  stream.accept(6, payload_of("xx"));
  EXPECT_EQ(to_string(stream.pop_ready()), "xxcc");
}

TEST(StreamReassembler, DuplicateAndOverlapTrimmed) {
  StreamReassembler stream(100);
  stream.accept(100, payload_of("abcdef"));
  // Full retransmission: dropped as duplicate.
  EXPECT_EQ(stream.accept(100, payload_of("abcdef")), 0u);
  EXPECT_EQ(stream.duplicate_bytes(), 6u);
  // Partial overlap: only the new tail is kept (first copy wins).
  EXPECT_EQ(stream.accept(103, payload_of("XYZghi")), 3u);
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefghi");
}

TEST(StreamReassembler, OverlappingOutOfOrderSegments) {
  StreamReassembler stream(0);
  stream.accept(4, payload_of("4567"));
  stream.accept(2, payload_of("2345"));  // overlaps the buffered segment
  stream.accept(0, payload_of("01"));
  EXPECT_EQ(to_string(stream.pop_ready()), "01234567");
}

TEST(StreamReassembler, SequenceWraparound) {
  const std::uint32_t near_wrap = 0xFFFFFFFA;  // 6 bytes before wrap
  StreamReassembler stream(near_wrap);
  stream.accept(near_wrap, payload_of("abcdef"));     // ends exactly at 0
  stream.accept(0, payload_of("ghij"));               // continues after wrap
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefghij");
  EXPECT_EQ(stream.expected_seq(), 4u);
}

TEST(StreamReassembler, OutOfOrderAcrossWrap) {
  const std::uint32_t near_wrap = 0xFFFFFFFC;
  StreamReassembler stream(near_wrap);
  stream.accept(2, payload_of("gh"));    // post-wrap segment first
  stream.accept(near_wrap, payload_of("ab"));
  stream.accept(0xFFFFFFFE, payload_of("cdef"));
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefgh");
}

TEST(StreamReassembler, FarFutureSegmentDropped) {
  ReassemblyConfig config;
  config.max_gap = 1000;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(5000, payload_of("far")), 0u);
  EXPECT_EQ(stream.dropped_segments(), 1u);
}

TEST(StreamReassembler, BufferCapDropsExcess) {
  ReassemblyConfig config;
  config.max_buffered = 8;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(10, payload_of("12345678")), 8u);
  EXPECT_EQ(stream.accept(30, payload_of("x")), 0u);  // over the cap
  EXPECT_EQ(stream.dropped_segments(), 1u);
}

TEST(StreamReassembler, EmptySegmentIgnored) {
  StreamReassembler stream(0);
  EXPECT_EQ(stream.accept(0, {}), 0u);
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(FlowReassembler, SeparatesDirectionsAndFlows) {
  FlowReassembler reassembler;
  Packet fwd;
  fwd.tuple = FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000,
                        80, IpProto::kTcp};
  fwd.tcp_seq = 0;
  fwd.payload = payload_of("request");
  Packet rev;
  rev.tuple = FiveTuple{Ipv4Addr(10, 0, 0, 2), Ipv4Addr(10, 0, 0, 1), 80,
                        1000, IpProto::kTcp};
  rev.tcp_seq = 0;
  rev.payload = payload_of("response");

  const auto c1 = reassembler.feed(fwd);
  const auto c2 = reassembler.feed(rev);
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(to_string(c1->data), "request");
  EXPECT_EQ(to_string(c2->data), "response");
  EXPECT_EQ(reassembler.active_streams(), 2u);
  EXPECT_TRUE(reassembler.erase(fwd.tuple));
  EXPECT_FALSE(reassembler.erase(fwd.tuple));
}

TEST(FlowReassembler, UdpPassesThrough) {
  FlowReassembler reassembler;
  Packet p;
  p.tuple.proto = IpProto::kUdp;
  p.payload = payload_of("datagram");
  const auto chunk = reassembler.feed(p);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(to_string(chunk->data), "datagram");
  EXPECT_EQ(reassembler.active_streams(), 0u);
}

// --- the evasion-resistance property -----------------------------------------

// A pattern split across out-of-order, overlapping segments must still be
// detected when the reassembled stream feeds the stateful DPI engine.
TEST(FlowReassembler, ReorderedStreamStillMatchesStatefully) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{"split-attack-string", 1, 0}};
  spec.chains[1] = {1};
  auto engine = dpi::Engine::compile(spec);

  const std::string stream = "xxxxsplit-attack-stringyyyy";
  // The first packet anchors the stream (it plays the SYN's role); the rest
  // arrive out of order with an overlap.
  struct Segment {
    std::uint32_t seq;
    std::string data;
  };
  const Segment segments[] = {
      {0, stream.substr(0, 8)},
      {14, stream.substr(14)},       // leaves a gap at 8..13
      {6, stream.substr(6, 10)},     // overlaps both neighbours, fills it
  };

  FlowReassembler reassembler;
  dpi::FlowCursor cursor;
  bool matched = false;
  for (const Segment& segment : segments) {
    Packet p;
    p.tuple = FiveTuple{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 5, 80,
                        IpProto::kTcp};
    p.tcp_seq = segment.seq;
    p.payload = payload_of(segment.data);
    const auto chunk = reassembler.feed(p);
    if (!chunk) continue;
    const auto result = engine->scan_packet(1, chunk->data, cursor);
    cursor = result.cursor;
    matched |= result.has_matches();
  }
  EXPECT_TRUE(matched);
}

// Randomized property: any segmentation + shuffle of a stream reassembles
// to the original bytes.
TEST(StreamReassembler, RandomizedShuffleProperty) {
  Rng rng(0x5EA55E);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t length = 1 + rng.index(400);
    std::string stream;
    for (std::size_t i = 0; i < length; ++i) {
      stream.push_back(static_cast<char>('a' + rng.index(4)));
    }
    // Random segmentation.
    struct Segment {
      std::uint32_t seq;
      std::string data;
    };
    std::vector<Segment> segments;
    const std::uint32_t initial = static_cast<std::uint32_t>(rng.next());
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t take = 1 + rng.index(stream.size() - at);
      segments.push_back(
          Segment{initial + static_cast<std::uint32_t>(at),
                  stream.substr(at, take)});
      at += take;
    }
    // Duplicate some segments (retransmissions), then shuffle.
    const std::size_t original_count = segments.size();
    for (std::size_t i = 0; i < original_count; ++i) {
      if (rng.bernoulli(0.2)) segments.push_back(segments[i]);
    }
    rng.shuffle(segments);

    StreamReassembler reassembler(initial);
    std::string assembled;
    for (const Segment& segment : segments) {
      reassembler.accept(segment.seq, payload_of(segment.data));
      const Bytes ready = reassembler.pop_ready();
      assembled.append(ready.begin(), ready.end());
    }
    EXPECT_EQ(assembled, stream) << "iter " << iter;
    EXPECT_EQ(reassembler.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace dpisvc::net
