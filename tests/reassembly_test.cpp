// Tests for TCP stream reassembly: ordering, overlaps, wraparound, limits —
// including the property that reassembled+stateful-scanned traffic detects
// exactly the matches of the in-order stream.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "dpi/engine.hpp"
#include "net/reassembly.hpp"

namespace dpisvc::net {
namespace {

Bytes payload_of(std::string_view text) { return to_bytes(text); }

TEST(StreamReassembler, InOrderBytesReleased) {
  StreamReassembler stream(1000);
  EXPECT_EQ(stream.accept(1000, payload_of("hello ")), 6u);
  EXPECT_EQ(stream.accept(1006, payload_of("world")), 5u);
  const Bytes ready = stream.pop_ready();
  EXPECT_EQ(to_string(ready), "hello world");
  EXPECT_EQ(stream.expected_seq(), 1011u);
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(StreamReassembler, OutOfOrderBuffersUntilGapFills) {
  StreamReassembler stream(0);
  stream.accept(6, payload_of("world"));
  EXPECT_TRUE(stream.pop_ready().empty());
  EXPECT_EQ(stream.buffered_bytes(), 5u);
  stream.accept(0, payload_of("hello "));
  EXPECT_EQ(to_string(stream.pop_ready()), "hello world");
  EXPECT_EQ(stream.buffered_bytes(), 0u);
}

TEST(StreamReassembler, MultipleGapsFillInAnyOrder) {
  StreamReassembler stream(0);
  stream.accept(8, payload_of("cc"));
  stream.accept(4, payload_of("bb"));
  stream.accept(2, payload_of("aa"));
  EXPECT_TRUE(stream.pop_ready().empty());
  stream.accept(0, payload_of("00"));
  EXPECT_EQ(to_string(stream.pop_ready()), "00aabb");  // 6..7 still missing
  stream.accept(6, payload_of("xx"));
  EXPECT_EQ(to_string(stream.pop_ready()), "xxcc");
}

TEST(StreamReassembler, DuplicateAndOverlapTrimmed) {
  StreamReassembler stream(100);
  stream.accept(100, payload_of("abcdef"));
  // Full retransmission: dropped as duplicate.
  EXPECT_EQ(stream.accept(100, payload_of("abcdef")), 0u);
  EXPECT_EQ(stream.duplicate_bytes(), 6u);
  // Partial overlap: only the new tail is kept (first copy wins).
  EXPECT_EQ(stream.accept(103, payload_of("XYZghi")), 3u);
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefghi");
}

TEST(StreamReassembler, OverlappingOutOfOrderSegments) {
  StreamReassembler stream(0);
  stream.accept(4, payload_of("4567"));
  stream.accept(2, payload_of("2345"));  // overlaps the buffered segment
  stream.accept(0, payload_of("01"));
  EXPECT_EQ(to_string(stream.pop_ready()), "01234567");
}

TEST(StreamReassembler, SequenceWraparound) {
  const std::uint32_t near_wrap = 0xFFFFFFFA;  // 6 bytes before wrap
  StreamReassembler stream(near_wrap);
  stream.accept(near_wrap, payload_of("abcdef"));     // ends exactly at 0
  stream.accept(0, payload_of("ghij"));               // continues after wrap
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefghij");
  EXPECT_EQ(stream.expected_seq(), 4u);
}

TEST(StreamReassembler, OutOfOrderAcrossWrap) {
  const std::uint32_t near_wrap = 0xFFFFFFFC;
  StreamReassembler stream(near_wrap);
  stream.accept(2, payload_of("gh"));    // post-wrap segment first
  stream.accept(near_wrap, payload_of("ab"));
  stream.accept(0xFFFFFFFE, payload_of("cdef"));
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefgh");
}

TEST(StreamReassembler, FarFutureSegmentDropped) {
  ReassemblyConfig config;
  config.max_gap = 1000;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(5000, payload_of("far")), 0u);
  EXPECT_EQ(stream.dropped_segments(), 1u);
}

TEST(StreamReassembler, BufferCapDropsExcess) {
  ReassemblyConfig config;
  config.max_buffered = 8;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(10, payload_of("12345678")), 8u);
  EXPECT_EQ(stream.accept(30, payload_of("x")), 0u);  // over the cap
  EXPECT_EQ(stream.dropped_segments(), 1u);
}

// DPI-bypass regression: fill the out-of-order budget, then send the
// gap-filling segment. It sits at the contiguous frontier and must be
// released even though the pending buffer is at capacity — budgeting it
// would stall the frontier forever and pass all later traffic unscanned.
TEST(StreamReassembler, FrontierSegmentExemptFromBufferBudget) {
  ReassemblyConfig config;
  config.max_buffered = 8;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(4, payload_of("45678901")), 8u);  // budget full
  EXPECT_TRUE(stream.pop_ready().empty());
  EXPECT_EQ(stream.accept(0, payload_of("0123")), 4u);
  EXPECT_EQ(to_string(stream.pop_ready()), "012345678901");
  EXPECT_EQ(stream.buffered_bytes(), 0u);
  EXPECT_EQ(stream.expected_seq(), 12u);
  EXPECT_EQ(stream.dropped_segments(), 0u);
}

TEST(StreamReassembler, FrontierPrefixReleasedWhenTailOverlapsAtBudget) {
  ReassemblyConfig config;
  config.max_buffered = 4;
  StreamReassembler stream(0, config);
  EXPECT_EQ(stream.accept(2, payload_of("2345")), 4u);  // budget full
  // Frontier segment whose tail overlaps the buffered one: the head [0, 2)
  // releases directly despite the full budget and unlocks the drain.
  EXPECT_EQ(stream.accept(0, payload_of("0123")), 2u);
  EXPECT_EQ(to_string(stream.pop_ready()), "012345");
  EXPECT_EQ(stream.buffered_bytes(), 0u);
}

TEST(StreamReassembler, EmptySegmentIgnored) {
  StreamReassembler stream(0);
  EXPECT_EQ(stream.accept(0, {}), 0u);
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(FlowReassembler, SeparatesDirectionsAndFlows) {
  FlowReassembler reassembler;
  Packet fwd;
  fwd.tuple = FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 1000,
                        80, IpProto::kTcp};
  fwd.tcp_seq = 0;
  fwd.payload = payload_of("request");
  Packet rev;
  rev.tuple = FiveTuple{Ipv4Addr(10, 0, 0, 2), Ipv4Addr(10, 0, 0, 1), 80,
                        1000, IpProto::kTcp};
  rev.tcp_seq = 0;
  rev.payload = payload_of("response");

  const auto c1 = reassembler.feed(fwd);
  const auto c2 = reassembler.feed(rev);
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(to_string(c1->data), "request");
  EXPECT_EQ(to_string(c2->data), "response");
  EXPECT_EQ(reassembler.active_streams(), 2u);
  EXPECT_TRUE(reassembler.erase(fwd.tuple));
  EXPECT_FALSE(reassembler.erase(fwd.tuple));
}

TEST(FlowReassembler, UdpPassesThrough) {
  FlowReassembler reassembler;
  Packet p;
  p.tuple.proto = IpProto::kUdp;
  p.payload = payload_of("datagram");
  const auto chunk = reassembler.feed(p);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(to_string(chunk->data), "datagram");
  EXPECT_EQ(reassembler.active_streams(), 0u);
}

// --- the evasion-resistance property -----------------------------------------

// A pattern split across out-of-order, overlapping segments must still be
// detected when the reassembled stream feeds the stateful DPI engine.
TEST(FlowReassembler, ReorderedStreamStillMatchesStatefully) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{"split-attack-string", 1, 0}};
  spec.chains[1] = {1};
  auto engine = dpi::Engine::compile(spec);

  const std::string stream = "xxxxsplit-attack-stringyyyy";
  // The first packet anchors the stream (it plays the SYN's role); the rest
  // arrive out of order with an overlap.
  struct Segment {
    std::uint32_t seq;
    std::string data;
  };
  const Segment segments[] = {
      {0, stream.substr(0, 8)},
      {14, stream.substr(14)},       // leaves a gap at 8..13
      {6, stream.substr(6, 10)},     // overlaps both neighbours, fills it
  };

  FlowReassembler reassembler;
  dpi::FlowCursor cursor;
  bool matched = false;
  for (const Segment& segment : segments) {
    Packet p;
    p.tuple = FiveTuple{Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), 5, 80,
                        IpProto::kTcp};
    p.tcp_seq = segment.seq;
    p.payload = payload_of(segment.data);
    const auto chunk = reassembler.feed(p);
    if (!chunk) continue;
    const auto result = engine->scan_packet(1, chunk->data, cursor);
    cursor = result.cursor;
    matched |= result.has_matches();
  }
  EXPECT_TRUE(matched);
}

// Randomized property: any segmentation + shuffle of a stream reassembles
// to the original bytes.
TEST(StreamReassembler, RandomizedShuffleProperty) {
  Rng rng(0x5EA55E);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t length = 1 + rng.index(400);
    std::string stream;
    for (std::size_t i = 0; i < length; ++i) {
      stream.push_back(static_cast<char>('a' + rng.index(4)));
    }
    // Random segmentation.
    struct Segment {
      std::uint32_t seq;
      std::string data;
    };
    std::vector<Segment> segments;
    const std::uint32_t initial = static_cast<std::uint32_t>(rng.next());
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t take = 1 + rng.index(stream.size() - at);
      segments.push_back(
          Segment{initial + static_cast<std::uint32_t>(at),
                  stream.substr(at, take)});
      at += take;
    }
    // Duplicate some segments (retransmissions), then shuffle.
    const std::size_t original_count = segments.size();
    for (std::size_t i = 0; i < original_count; ++i) {
      if (rng.bernoulli(0.2)) segments.push_back(segments[i]);
    }
    rng.shuffle(segments);

    StreamReassembler reassembler(initial);
    std::string assembled;
    for (const Segment& segment : segments) {
      reassembler.accept(segment.seq, payload_of(segment.data));
      const Bytes ready = reassembler.pop_ready();
      assembled.append(ready.begin(), ready.end());
    }
    EXPECT_EQ(assembled, stream) << "iter " << iter;
    EXPECT_EQ(reassembler.buffered_bytes(), 0u);
  }
}

// --- overlap/ambiguity policies ----------------------------------------------

ReassemblyConfig policy_config(OverlapPolicy policy) {
  ReassemblyConfig config;
  config.overlap_policy = policy;
  return config;
}

TEST(OverlapPolicy, FirstWinsKeepsPendingCopyAndCountsConflict) {
  StreamReassembler stream(0, policy_config(OverlapPolicy::kFirstWins));
  stream.accept(4, payload_of("REAL"));   // pending, ahead of the frontier
  stream.accept(4, payload_of("FAKE"));   // conflicting overlap
  EXPECT_EQ(stream.ambiguous_overlaps(), 1u);
  EXPECT_EQ(stream.conflicting_overlap_bytes(), 4u);  // all four differ
  stream.accept(0, payload_of("head"));
  EXPECT_EQ(to_string(stream.pop_ready()), "headREAL");
}

TEST(OverlapPolicy, LastWinsOverwritesPendingCopy) {
  StreamReassembler stream(0, policy_config(OverlapPolicy::kLastWins));
  stream.accept(4, payload_of("REAL"));
  stream.accept(4, payload_of("FAKE"));
  EXPECT_EQ(stream.ambiguous_overlaps(), 1u);
  stream.accept(0, payload_of("head"));
  EXPECT_EQ(to_string(stream.pop_ready()), "headFAKE");
}

TEST(OverlapPolicy, LastWinsCannotRewriteReleasedBytes) {
  // Released bytes are immutable under every policy: an inline middlebox
  // cannot un-forward what it already let through.
  StreamReassembler stream(0, policy_config(OverlapPolicy::kLastWins));
  stream.accept(0, payload_of("released"));
  EXPECT_EQ(to_string(stream.pop_ready()), "released");
  stream.accept(0, payload_of("REWRITE!"));
  EXPECT_EQ(stream.ambiguous_overlaps(), 1u);
  EXPECT_TRUE(stream.pop_ready().empty());
  stream.accept(8, payload_of("tail"));
  EXPECT_EQ(to_string(stream.pop_ready()), "tail");
}

TEST(OverlapPolicy, RejectAmbiguousPoisonsOnPendingConflict) {
  StreamReassembler stream(0, policy_config(OverlapPolicy::kRejectAmbiguous));
  stream.accept(4, payload_of("REAL"));
  stream.accept(4, payload_of("FAKE"));
  EXPECT_TRUE(stream.ambiguous());
  EXPECT_EQ(stream.buffered_bytes(), 0u);  // pending discarded
  // Nothing is ever released again — conflicting data cannot reach the
  // scan path in either version.
  stream.accept(0, payload_of("head"));
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(OverlapPolicy, RejectAmbiguousPoisonsOnRetransmissionConflict) {
  StreamReassembler stream(0, policy_config(OverlapPolicy::kRejectAmbiguous));
  stream.accept(0, payload_of("abcdef"));
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdef");
  // Retransmission of released bytes with different content: the history
  // window catches it and the stream fails closed.
  stream.accept(0, payload_of("abcdXX"));
  EXPECT_TRUE(stream.ambiguous());
  EXPECT_EQ(stream.conflicting_overlap_bytes(), 2u);
  stream.accept(6, payload_of("tail"));
  EXPECT_TRUE(stream.pop_ready().empty());
}

TEST(OverlapPolicy, IdenticalRetransmissionIsNotAmbiguous) {
  StreamReassembler stream(0, policy_config(OverlapPolicy::kRejectAmbiguous));
  stream.accept(0, payload_of("abcdef"));
  stream.pop_ready();
  stream.accept(0, payload_of("abcdef"));  // exact duplicate: benign
  EXPECT_FALSE(stream.ambiguous());
  EXPECT_EQ(stream.duplicate_bytes(), 6u);
  stream.accept(6, payload_of("tail"));
  EXPECT_EQ(to_string(stream.pop_ready()), "tail");
}

TEST(OverlapPolicy, HistoryWindowBoundsRetransmissionChecks) {
  ReassemblyConfig config = policy_config(OverlapPolicy::kRejectAmbiguous);
  config.overlap_history = 4;
  StreamReassembler stream(0, config);
  stream.accept(0, payload_of("abcdefgh"));
  stream.pop_ready();
  // Conflicts with bytes 0..3 — outside the 4-byte history window, so the
  // content is gone and the retransmission cannot be conflict-checked.
  stream.accept(0, payload_of("XXXX"));
  EXPECT_FALSE(stream.ambiguous());
  // Bytes 4..7 are inside the window: a conflict there is caught.
  stream.accept(4, payload_of("YYYY"));
  EXPECT_TRUE(stream.ambiguous());
}

TEST(OverlapPolicy, NamesAreStable) {
  EXPECT_STREQ(overlap_policy_name(OverlapPolicy::kFirstWins), "first_wins");
  EXPECT_STREQ(overlap_policy_name(OverlapPolicy::kLastWins), "last_wins");
  EXPECT_STREQ(overlap_policy_name(OverlapPolicy::kRejectAmbiguous),
               "reject_ambiguous");
}

// --- stream lifecycle: LRU eviction, RST, FIN --------------------------------

Packet tcp_packet(std::uint16_t src_port, std::uint32_t seq,
                  std::string_view data, std::uint8_t flags = 0x18) {
  Packet p;
  p.tuple = FiveTuple{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), src_port,
                      80, IpProto::kTcp};
  p.tcp_seq = seq;
  p.payload = payload_of(data);
  p.tcp_flags = flags;
  return p;
}

TEST(FlowReassembler, LruEvictionAtStreamCapacity) {
  ReassemblyConfig config;
  config.max_streams = 2;
  FlowReassembler reassembler(config);
  // Open two streams with buffered (out-of-order) data.
  reassembler.feed(tcp_packet(1001, 10, "aa"));  // gap: stays buffered
  reassembler.feed(tcp_packet(1002, 10, "bb"));
  EXPECT_EQ(reassembler.active_streams(), 2u);
  // Touch stream 1001 so 1002 becomes the LRU victim.
  reassembler.feed(tcp_packet(1001, 20, "cc"));
  // A third stream evicts 1002.
  reassembler.feed(tcp_packet(1003, 0, "dd"));
  EXPECT_EQ(reassembler.active_streams(), 2u);
  EXPECT_EQ(reassembler.stats().stream_evictions, 1u);
  EXPECT_TRUE(reassembler.erase(tcp_packet(1001, 0, "").tuple));
  EXPECT_FALSE(reassembler.erase(tcp_packet(1002, 0, "").tuple));
}

TEST(FlowReassembler, RstTearsDownImmediatelyAndFlushesReady) {
  FlowReassembler reassembler;
  auto chunk = reassembler.feed(tcp_packet(2000, 0, "in-order"));
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(reassembler.active_streams(), 1u);
  // RST with garbage payload: stream state dropped, payload never released.
  chunk = reassembler.feed(tcp_packet(2000, 8, "EVIL", 0x04));
  EXPECT_FALSE(chunk.has_value());
  EXPECT_EQ(reassembler.active_streams(), 0u);
  EXPECT_EQ(reassembler.stats().streams_closed, 1u);
}

TEST(FlowReassembler, RstOnUnknownStreamIsNoop) {
  FlowReassembler reassembler;
  EXPECT_FALSE(reassembler.feed(tcp_packet(2001, 0, "", 0x04)).has_value());
  EXPECT_EQ(reassembler.active_streams(), 0u);
  EXPECT_EQ(reassembler.stats().streams_closed, 0u);
}

TEST(FlowReassembler, FinTearsDownAfterSequenceConsumed) {
  FlowReassembler reassembler;
  // FIN arrives with the last data segment while a gap is still open: the
  // stream must survive until the gap fills.
  reassembler.feed(tcp_packet(3000, 0, "first."));
  auto chunk = reassembler.feed(tcp_packet(3000, 12, "final.", 0x18 | 0x01));
  EXPECT_FALSE(chunk.has_value());  // 6..11 missing
  EXPECT_EQ(reassembler.active_streams(), 1u);
  // The gap fills: everything drains and the FIN's sequence is consumed.
  chunk = reassembler.feed(tcp_packet(3000, 6, "middle"));
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(to_string(chunk->data), "middlefinal.");
  EXPECT_EQ(reassembler.active_streams(), 0u);
  EXPECT_EQ(reassembler.stats().streams_closed, 1u);
}

// A forged FIN behind the frontier must not tear the stream down: the
// endpoint ignores an out-of-window FIN, so honoring it would desync the
// engine (buffered bytes discarded unscanned, next segment re-anchoring a
// fresh stream past cross-packet pattern state).
TEST(FlowReassembler, StaleFinBehindFrontierIgnored) {
  FlowReassembler reassembler;
  auto chunk = reassembler.feed(tcp_packet(5000, 0, "released"));
  ASSERT_TRUE(chunk.has_value());
  chunk = reassembler.feed(tcp_packet(5000, 2, "", 0x18 | 0x01));
  EXPECT_FALSE(chunk.has_value());
  EXPECT_EQ(reassembler.active_streams(), 1u);
  EXPECT_EQ(reassembler.stats().ignored_fins, 1u);
  EXPECT_EQ(reassembler.stats().streams_closed, 0u);
  // The stream continues where it left off...
  chunk = reassembler.feed(tcp_packet(5000, 8, "more"));
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(to_string(chunk->data), "more");
  // ...and a genuine FIN at the frontier still closes it.
  reassembler.feed(tcp_packet(5000, 12, "", 0x18 | 0x01));
  EXPECT_EQ(reassembler.active_streams(), 0u);
  EXPECT_EQ(reassembler.stats().streams_closed, 1u);
}

// An out-of-window RST must not tear the stream down either (RFC 793/5961:
// endpoints only accept an in-window RST) — the classic Snort-era RST
// desync evasion.
TEST(FlowReassembler, OutOfWindowRstIgnored) {
  FlowReassembler reassembler;
  reassembler.feed(tcp_packet(6000, 0, "in-order"));
  // Behind the frontier.
  auto chunk = reassembler.feed(tcp_packet(6000, 3, "", 0x04));
  EXPECT_FALSE(chunk.has_value());
  EXPECT_EQ(reassembler.active_streams(), 1u);
  EXPECT_EQ(reassembler.stats().ignored_rsts, 1u);
  // Absurdly far ahead (beyond max_gap).
  reassembler.feed(tcp_packet(6000, 0x7FFF0000, "", 0x04));
  EXPECT_EQ(reassembler.active_streams(), 1u);
  EXPECT_EQ(reassembler.stats().ignored_rsts, 2u);
  EXPECT_EQ(reassembler.stats().streams_closed, 0u);
  // Stream state survived: the next in-order segment still reassembles.
  chunk = reassembler.feed(tcp_packet(6000, 8, "-more"));
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(to_string(chunk->data), "-more");
  // An in-window RST (at the frontier) tears down.
  reassembler.feed(tcp_packet(6000, 13, "", 0x04));
  EXPECT_EQ(reassembler.active_streams(), 0u);
  EXPECT_EQ(reassembler.stats().streams_closed, 1u);
}

TEST(FlowReassembler, StatsAggregateAcrossStreams) {
  FlowReassembler reassembler;
  reassembler.feed(tcp_packet(4000, 0, "abc"));
  reassembler.feed(tcp_packet(4000, 0, "abc"));  // duplicate
  reassembler.feed(tcp_packet(4001, 4, "REAL"));
  reassembler.feed(tcp_packet(4001, 4, "FAKE"));  // conflict
  const ReassemblyStats& stats = reassembler.stats();
  EXPECT_EQ(stats.duplicate_bytes, 7u);  // 3 retransmitted + 4 overlapped
  EXPECT_EQ(stats.ambiguous_overlaps, 1u);
  EXPECT_EQ(stats.conflicting_overlap_bytes, 4u);
}

// --- sequence wraparound satellites ------------------------------------------

// A pattern straddling the 0xFFFFFFFF -> 0 boundary must match exactly as if
// the stream had no wrap: the reassembler releases contiguous bytes and the
// stateful engine's cursor carries the automaton state across the boundary.
TEST(SeqWraparound, MatchStraddlesWrapBoundary) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{"wrap-attack", 1, 0}};
  spec.chains[1] = {1};
  auto engine = dpi::Engine::compile(spec);

  const std::string stream = "aaaawrap-attackbbbb";
  // Place the stream so the wrap lands mid-pattern ("wrap-" before, the
  // rest after).
  const std::uint32_t initial = 0u - 9u;
  StreamReassembler reassembler(initial);
  dpi::FlowCursor cursor;
  bool matched = false;
  // Deliver in an order that exercises buffering across the wrap.
  const std::size_t cuts[][2] = {{10, 9}, {0, 5}, {5, 5}};
  for (const auto& [at, len] : cuts) {
    reassembler.accept(initial + static_cast<std::uint32_t>(at),
                       payload_of(stream.substr(at, len)));
    const Bytes ready = reassembler.pop_ready();
    if (ready.empty()) continue;
    const auto result = engine->scan_packet(1, ready, cursor);
    cursor = result.cursor;
    matched |= result.has_matches();
  }
  EXPECT_TRUE(matched);
  EXPECT_EQ(reassembler.expected_seq(),
            initial + static_cast<std::uint32_t>(stream.size()));
}

TEST(SeqWraparound, MaxGapEnforcedAcrossWrap) {
  ReassemblyConfig config;
  config.max_gap = 100;
  const std::uint32_t initial = 0xFFFFFFF0;
  StreamReassembler stream(initial, config);
  // 50 bytes ahead of the frontier, landing past the wrap: within max_gap,
  // must be buffered — the gap math must not see a huge unsigned distance.
  EXPECT_EQ(stream.accept(initial + 50, payload_of("ok")), 2u);
  EXPECT_EQ(stream.buffered_bytes(), 2u);
  // 200 bytes ahead: beyond max_gap, dropped.
  EXPECT_EQ(stream.accept(initial + 200, payload_of("no")), 0u);
  EXPECT_EQ(stream.dropped_segments(), 1u);
}

TEST(SeqWraparound, RetransmissionDetectedAcrossWrap) {
  const std::uint32_t initial = 0xFFFFFFFC;
  StreamReassembler stream(initial, policy_config(OverlapPolicy::kFirstWins));
  stream.accept(initial, payload_of("abcdefgh"));  // frontier wraps to 4
  EXPECT_EQ(to_string(stream.pop_ready()), "abcdefgh");
  // Retransmission starting before the wrap of bytes already released.
  stream.accept(initial + 2, payload_of("cdef"));
  EXPECT_EQ(stream.duplicate_bytes(), 4u);
  EXPECT_FALSE(stream.ambiguous());
}

}  // namespace
}  // namespace dpisvc::net
