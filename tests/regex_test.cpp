// Tests for the regex substrate: parser, Pike VM semantics, anchor
// extraction, including property tests against reference semantics.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "regex/anchors.hpp"
#include "regex/matcher.hpp"

namespace dpisvc::regex {
namespace {

bool matches(std::string_view pattern, std::string_view input,
             bool case_insensitive = false) {
  ParseOptions opts;
  opts.case_insensitive = case_insensitive;
  return regex_search(pattern, input, opts);
}

// --- basic matching semantics ------------------------------------------------

TEST(RegexMatch, Literals) {
  EXPECT_TRUE(matches("abc", "xxabcxx"));
  EXPECT_TRUE(matches("abc", "abc"));
  EXPECT_FALSE(matches("abc", "ab"));
  EXPECT_FALSE(matches("abc", "axbxc"));
}

TEST(RegexMatch, Alternation) {
  EXPECT_TRUE(matches("cat|dog", "hotdog"));
  EXPECT_TRUE(matches("cat|dog", "catalog"));
  EXPECT_FALSE(matches("cat|dog", "cow"));
  EXPECT_TRUE(matches("a|b|c", "zzc"));
}

TEST(RegexMatch, Repetition) {
  EXPECT_TRUE(matches("ab*c", "ac"));
  EXPECT_TRUE(matches("ab*c", "abbbbc"));
  EXPECT_FALSE(matches("ab+c", "ac"));
  EXPECT_TRUE(matches("ab+c", "abc"));
  EXPECT_TRUE(matches("ab?c", "ac"));
  EXPECT_TRUE(matches("ab?c", "abc"));
  EXPECT_FALSE(matches("ab?c", "abbc"));
}

TEST(RegexMatch, CountedRepetition) {
  EXPECT_TRUE(matches("a{3}", "aaa"));
  EXPECT_FALSE(matches("a{3}", "aa"));
  EXPECT_TRUE(matches("a{2,4}b", "aab"));
  EXPECT_TRUE(matches("a{2,4}b", "aaaab"));
  EXPECT_FALSE(matches("^a{2,4}b", "ab"));
  EXPECT_TRUE(matches("a{2,}b", "aaaaaaab"));
  EXPECT_FALSE(matches("a{2,}b", "ab"));
  EXPECT_TRUE(matches("(ab){2}", "xabab"));
  EXPECT_FALSE(matches("(ab){2}", "abxab"));
}

TEST(RegexMatch, LiteralBraceWithoutCount) {
  EXPECT_TRUE(matches("a{x}", "za{x}z"));
  EXPECT_TRUE(matches("{", "a{b"));
}

TEST(RegexMatch, Classes) {
  EXPECT_TRUE(matches("[abc]+", "zzbz"));
  EXPECT_FALSE(matches("[abc]", "xyz"));
  EXPECT_TRUE(matches("[a-f0-9]{4}", "beef"));
  EXPECT_TRUE(matches("[^a]", "ba"));
  EXPECT_FALSE(matches("[^ab]+$", "ab"));
  EXPECT_TRUE(matches("[]x]", "]"));   // ']' first in class is literal
  EXPECT_TRUE(matches("[a-]", "-"));   // trailing '-' is literal
}

TEST(RegexMatch, ClassEscapes) {
  EXPECT_TRUE(matches(R"(\d+)", "abc123"));
  EXPECT_FALSE(matches(R"(\d)", "abc"));
  EXPECT_TRUE(matches(R"(\w+)", "under_score9"));
  EXPECT_TRUE(matches(R"(\s)", "a b"));
  EXPECT_FALSE(matches(R"(\s)", "ab"));
  EXPECT_TRUE(matches(R"(\D)", "1a2"));
  EXPECT_TRUE(matches(R"(\S)", " x "));
  EXPECT_TRUE(matches(R"([\d\s]+)", "1 2"));
}

TEST(RegexMatch, Escapes) {
  EXPECT_TRUE(matches(R"(a\.b)", "a.b"));
  EXPECT_FALSE(matches(R"(a\.b)", "axb"));
  EXPECT_TRUE(matches(R"(\x41\x42)", "xAB"));
  EXPECT_TRUE(matches(R"(a\nb)", "a\nb"));
  EXPECT_TRUE(matches(R"(\\)", "a\\b"));
  EXPECT_TRUE(matches(R"(\*)", "2*3"));
}

TEST(RegexMatch, Dot) {
  EXPECT_TRUE(matches("a.c", "abc"));
  EXPECT_TRUE(matches("a.c", "a\nc"));  // DOTALL semantics for DPI payloads
  EXPECT_FALSE(matches("a.c", "ac"));
}

TEST(RegexMatch, AnchorsStartEnd) {
  EXPECT_TRUE(matches("^abc", "abcdef"));
  EXPECT_FALSE(matches("^abc", "xabc"));
  EXPECT_TRUE(matches("def$", "abcdef"));
  EXPECT_FALSE(matches("def$", "defx"));
  EXPECT_TRUE(matches("^abc$", "abc"));
  EXPECT_FALSE(matches("^abc$", "abcd"));
  EXPECT_TRUE(matches("^$", ""));
  EXPECT_FALSE(matches("^$", "a"));
}

TEST(RegexMatch, Groups) {
  EXPECT_TRUE(matches("(ab|cd)+ef", "xxcdabef"));
  EXPECT_TRUE(matches("(?:ab)+", "abab"));
  EXPECT_FALSE(matches("(ab|cd)ef", "abxef"));
}

TEST(RegexMatch, CaseInsensitive) {
  EXPECT_TRUE(matches("abc", "xABCx", /*ci=*/true));
  EXPECT_FALSE(matches("abc", "xABCx", /*ci=*/false));
  EXPECT_TRUE(matches("[a-z]+!", "HELLO!", /*ci=*/true));
}

TEST(RegexMatch, NonGreedySuffixAccepted) {
  // Existence semantics: lazy quantifiers behave identically.
  EXPECT_TRUE(matches("a.*?b", "axxxb"));
  EXPECT_TRUE(matches("a+?b", "aab"));
}

TEST(RegexMatch, PaperExample) {
  // The example of §5.3.
  const char* pattern = R"(regular\s*expression\s*\d+)";
  EXPECT_TRUE(matches(pattern, "some regular expression 42 here"));
  EXPECT_TRUE(matches(pattern, "regularexpression7"));
  EXPECT_FALSE(matches(pattern, "regular expression"));
}

TEST(RegexMatch, SearchEndReportsEarliestCompletion) {
  Matcher m(Program::compile("ab+"));
  const std::string input = "zzabbb";
  const auto end = m.search_end(
      BytesView(reinterpret_cast<const std::uint8_t*>(input.data()),
                input.size()));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, 4u);  // earliest completion is "ab" ending at offset 4
}

TEST(RegexMatch, EmptyPatternMatchesEverything) {
  EXPECT_TRUE(matches("", ""));
  EXPECT_TRUE(matches("", "xyz"));
  EXPECT_TRUE(matches("a*", "zzz"));
}

// --- pathological input: no backtracking blowup -------------------------------

TEST(RegexMatch, NoCatastrophicBacktracking) {
  // (a+)+b against a^n: exponential for backtrackers, linear for Pike VM.
  const std::string input(2000, 'a');
  EXPECT_FALSE(matches("(a+)+b", input));
  EXPECT_TRUE(matches("(a+)+b", input + "b"));
}

// --- parser error handling ------------------------------------------------------

TEST(RegexParse, RejectsMalformed) {
  EXPECT_THROW(parse("("), SyntaxError);
  EXPECT_THROW(parse(")"), SyntaxError);
  EXPECT_THROW(parse("a)"), SyntaxError);
  EXPECT_THROW(parse("[abc"), SyntaxError);
  EXPECT_THROW(parse("*a"), SyntaxError);
  EXPECT_THROW(parse("a{3,1}"), SyntaxError);
  EXPECT_THROW(parse("a\\"), SyntaxError);
  EXPECT_THROW(parse("[z-a]"), SyntaxError);
  EXPECT_THROW(parse("\\q"), SyntaxError);   // unsupported alnum escape
  EXPECT_THROW(parse("a{5000}"), SyntaxError);  // repeat bound
  EXPECT_THROW(parse("^*"), SyntaxError);    // repeated anchor
  EXPECT_THROW(parse("(?<x>a)"), SyntaxError);
}

TEST(RegexParse, GroupNestingDepthBoundary) {
  // Each '(' is a recursive-descent frame; the depth cap turns adversarial
  // "((((..." patterns into SyntaxError instead of stack exhaustion.
  ParseOptions options;
  const int depth = options.max_group_depth;
  const std::string at_limit =
      std::string(depth, '(') + "a" + std::string(depth, ')');
  EXPECT_NO_THROW(parse(at_limit, options));
  const std::string over_limit =
      std::string(depth + 1, '(') + "a" + std::string(depth + 1, ')');
  EXPECT_THROW(parse(over_limit, options), SyntaxError);
  // Sibling groups do not accumulate depth.
  EXPECT_NO_THROW(parse("(a)(b)(c)(d)", options));
}

// --- anchor extraction (§5.3) ----------------------------------------------------

TEST(Anchors, PaperExample) {
  // "In the regular expression regular\s*expression\s*\d+, the anchors
  //  regular and expression are extracted."
  const auto anchors = extract_anchors(R"(regular\s*expression\s*\d+)");
  EXPECT_EQ(anchors, (std::vector<std::string>{"regular", "expression"}));
}

TEST(Anchors, ShortRunsNotExtracted) {
  EXPECT_TRUE(extract_anchors(R"(abc\d+)").empty());  // length 3 < 4
  EXPECT_EQ(extract_anchors(R"(abcd\d+)"),
            (std::vector<std::string>{"abcd"}));
}

TEST(Anchors, AlternationBreaksMandatoriness) {
  EXPECT_TRUE(extract_anchors("(attack|benign)").empty());
  const auto anchors = extract_anchors("HEAD(attack|benign)TAIL");
  EXPECT_EQ(anchors, (std::vector<std::string>{"HEAD", "TAIL"}));
}

TEST(Anchors, OptionalPartsExcluded) {
  EXPECT_EQ(extract_anchors("foobar(baz)?quux"),
            (std::vector<std::string>{"foobar", "quux"}));
  EXPECT_EQ(extract_anchors("(optional)*mandatory"),
            (std::vector<std::string>{"mandatory"}));
}

TEST(Anchors, RepeatUnrollsMandatoryCopies) {
  EXPECT_EQ(extract_anchors("(ab){3}"), (std::vector<std::string>{"ababab"}));
  EXPECT_EQ(extract_anchors("(ab){2,5}"), (std::vector<std::string>{"abab"}));
  EXPECT_EQ(extract_anchors("x(abcd)+y"),
            (std::vector<std::string>{"xabcd"}));
}

TEST(Anchors, GroupsAreTransparent) {
  EXPECT_EQ(extract_anchors("(?:ab)(cd)(ef)gh"),
            (std::vector<std::string>{"abcdefgh"}));
}

TEST(Anchors, ClassesBreakRuns) {
  EXPECT_EQ(extract_anchors(R"(GET /[a-z]+/index\.html)"),
            (std::vector<std::string>{"GET /", "/index.html"}));
}

TEST(Anchors, CaseInsensitiveLiteralsNotExtracted) {
  // 'i'-flag classes have 2 bytes, so no fixed literal run exists.
  ParseOptions opts;
  opts.case_insensitive = true;
  EXPECT_TRUE(extract_anchors("attack", opts).empty());
  // Digits are unaffected by case folding.
  EXPECT_EQ(extract_anchors("12345", opts),
            (std::vector<std::string>{"12345"}));
}

TEST(Anchors, DuplicatesRemoved) {
  // The run between the two \d occurrences is " evil" (the space is a
  // literal), so three distinct anchors result; repeating the same run text
  // is deduplicated.
  EXPECT_EQ(extract_anchors(R"(evil\d evil\d evil!)"),
            (std::vector<std::string>{"evil", " evil", " evil!"}));
  EXPECT_EQ(extract_anchors(R"(evil\d+evil\d+evil\d)"),
            (std::vector<std::string>{"evil"}));
  // Escaped dots are literal bytes: the whole expression is one run.
  EXPECT_EQ(extract_anchors(R"(spam\.spam\.)"),
            (std::vector<std::string>{"spam.spam."}));
}

TEST(Anchors, AnchorsAreNecessaryProperty) {
  // Property: every anchor extracted from a pattern occurs as a substring of
  // every string the pattern matches. Validated on a corpus of patterns and
  // matching inputs.
  struct Case {
    const char* pattern;
    const char* matching_input;
  };
  const Case cases[] = {
      {R"(regular\s*expression\s*\d+)", "regular expression 99"},
      {"HEAD(attack|benign)TAIL", "HEADattackTAIL"},
      {"foobar(baz)?quux", "foobarquux"},
      {"(ab){2,5}", "ababab"},
      {R"(GET /[a-z]+/index\.html)", "GET /files/index.html"},
      {R"(user=\w{4,}&pass=\w+)", "user=root&pass=1234"},
  };
  for (const Case& c : cases) {
    ASSERT_TRUE(matches(c.pattern, c.matching_input)) << c.pattern;
    for (const std::string& anchor : extract_anchors(c.pattern)) {
      EXPECT_NE(std::string(c.matching_input).find(anchor), std::string::npos)
          << "anchor '" << anchor << "' missing from match of " << c.pattern;
    }
  }
}

// --- randomized property test against a reference implementation ---------------

// Reference: naive exponential-free matcher for a tiny regex subset
// (literals, '.', '*') implemented by recursion, compared to the Pike VM on
// random inputs.
bool ref_match_here(const std::string& p, std::size_t pi, const std::string& s,
                    std::size_t si) {
  if (pi == p.size()) return true;
  const bool star = pi + 1 < p.size() && p[pi + 1] == '*';
  if (star) {
    if (ref_match_here(p, pi + 2, s, si)) return true;
    while (si < s.size() && (p[pi] == '.' || p[pi] == s[si])) {
      ++si;
      if (ref_match_here(p, pi + 2, s, si)) return true;
    }
    return false;
  }
  if (si < s.size() && (p[pi] == '.' || p[pi] == s[si])) {
    return ref_match_here(p, pi + 1, s, si + 1);
  }
  return false;
}

bool ref_search(const std::string& p, const std::string& s) {
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (ref_match_here(p, 0, s, i)) return true;
  }
  return false;
}

TEST(RegexProperty, AgreesWithReferenceOnRandomPatterns) {
  Rng rng(0xD1CE);
  const char alphabet[] = {'a', 'b', 'c'};
  for (int iter = 0; iter < 300; ++iter) {
    // Random pattern over {a,b,c,.} with optional stars, length 1..6.
    std::string pattern;
    const std::size_t plen = 1 + rng.index(6);
    for (std::size_t i = 0; i < plen; ++i) {
      const char c = rng.bernoulli(0.2) ? '.' : alphabet[rng.index(3)];
      pattern.push_back(c);
      if (rng.bernoulli(0.3)) pattern.push_back('*');
    }
    // Random input, length 0..12.
    std::string input;
    const std::size_t ilen = rng.index(13);
    for (std::size_t i = 0; i < ilen; ++i) {
      input.push_back(alphabet[rng.index(3)]);
    }
    EXPECT_EQ(matches(pattern, input), ref_search(pattern, input))
        << "pattern='" << pattern << "' input='" << input << "'";
  }
}


// --- search_end with a minimum end position ---------------------------------
//
// The windowed cross-packet evaluation (dpi/engine.cpp) scans
// window+packet and must suppress completions that end inside the window:
// those bytes were already evaluated last packet. search_end(input,
// min_end) reports the earliest completion whose end is > min_end.

namespace {
BytesView bv(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}
}  // namespace

TEST(RegexMatch, SearchEndMinEndSuppressesEarlyCompletion) {
  Matcher m(Program::compile("ab+"));
  const std::string input = "zzabbb";
  // "ab" completes at 4; with min_end=4 the next completion ("abb", end 5)
  // is reported instead.
  const auto end = m.search_end(bv(input), 4);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, 5u);
}

TEST(RegexMatch, SearchEndMinEndExhaustsMatches) {
  Matcher m(Program::compile("ab"));
  // The only completion ends at 4; demanding a later end finds nothing.
  EXPECT_FALSE(m.search_end(bv("zzab"), 4).has_value());
  EXPECT_FALSE(m.search_end(bv("zzab"), 7).has_value());
}

TEST(RegexMatch, SearchEndMinEndFindsLaterStart) {
  Matcher m(Program::compile("a\\d"));
  const std::string input = "a1xxa2";
  EXPECT_EQ(m.search_end(bv(input), 0).value(), 2u);
  // Suppressing the first occurrence surfaces the second, which starts
  // after min_end entirely (the Pike VM seeds a thread at every position).
  EXPECT_EQ(m.search_end(bv(input), 2).value(), 6u);
}

TEST(RegexMatch, SearchEndMinEndStraddlingMatch) {
  // The interesting production case: the match STARTS inside the window
  // (<= min_end) but ENDS in the new bytes — it must still be reported.
  Matcher m(Program::compile("card=[0-9]+#"));
  const std::string input = "card=1234#";
  for (std::size_t min_end = 0; min_end < input.size(); ++min_end) {
    EXPECT_EQ(m.search_end(bv(input), min_end).value(), input.size())
        << "min_end=" << min_end;
  }
  EXPECT_FALSE(m.search_end(bv(input), input.size()).has_value());
}

TEST(RegexMatch, SearchEndZeroMinEndMatchesLegacyOverload) {
  Matcher m(Program::compile("ab+"));
  const std::string input = "zzabbb";
  EXPECT_EQ(m.search_end(bv(input)), m.search_end(bv(input), 0));
}

TEST(RegexMatch, SearchEndMinEndEmptyMatchSemantics) {
  // "a*" completes with the empty match at position 0; min_end=0 keeps it,
  // any larger min_end requires consuming at least one 'a'.
  Matcher m(Program::compile("a*"));
  EXPECT_EQ(m.search_end(bv("aaz"), 0).value(), 0u);
  EXPECT_EQ(m.search_end(bv("aaz"), 1).value(), 2u);
}

}  // namespace
}  // namespace dpisvc::regex
