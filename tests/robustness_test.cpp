// Robustness tests: every parser that consumes wire input (packet frames,
// match reports, JSON control messages, serialized automata, compressed
// payloads, trace files) must reject arbitrary corruption with an exception
// — never crash, hang, or silently mis-parse. These are seeded-random
// mutation tests ("poor man's fuzzing") plus targeted stress cases.
#include <gtest/gtest.h>

#include "ac/serialize.hpp"
#include "common/rng.hpp"
#include "compress/deflate.hpp"
#include "compress/inflate.hpp"
#include "json/json.hpp"
#include "net/packet.hpp"
#include "net/result.hpp"
#include "service/controller.hpp"
#include "workload/trace_io.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc {
namespace {

/// Applies `n` random byte mutations (flip, truncate, extend).
Bytes mutate(const Bytes& input, Rng& rng, int n = 3) {
  Bytes out = input;
  for (int i = 0; i < n; ++i) {
    if (out.empty()) {
      out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
      continue;
    }
    switch (rng.index(4)) {
      case 0:  // bit flip
        out[rng.index(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
        break;
      case 1:  // byte overwrite
        out[rng.index(out.size())] =
            static_cast<std::uint8_t>(rng.uniform(0, 255));
        break;
      case 2:  // truncate
        out.resize(rng.index(out.size() + 1));
        break;
      case 3:  // append garbage
        out.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
        break;
    }
  }
  return out;
}

net::Packet sample_packet() {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = 1234;
  p.tuple.dst_port = 80;
  p.payload = to_bytes("some payload content here");
  p.push_tag(net::TagKind::kPolicyChain, 3);
  net::ServiceHeader sh;
  sh.service_path_id = 9;
  sh.metadata = {1, 2, 3};
  p.service_header = sh;
  return p;
}

TEST(Robustness, PacketFromWireNeverCrashes) {
  Rng rng(101);
  const Bytes wire = sample_packet().to_wire();
  int parsed = 0;
  for (int i = 0; i < 3000; ++i) {
    const Bytes corrupted = mutate(wire, rng);
    try {
      const net::Packet p = net::Packet::from_wire(corrupted);
      ++parsed;  // mutation happened to stay valid (e.g. payload bytes)
      // Whatever parsed must re-serialize without crashing.
      (void)p.to_wire();
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
  // The checksum catches most single-bit header flips; payload-only
  // mutations may legitimately survive.
  EXPECT_LT(parsed, 3000);
}

TEST(Robustness, PacketFromRandomBytesNeverCrashes) {
  Rng rng(102);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.index(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    try {
      (void)net::Packet::from_wire(garbage);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(Robustness, ReportDecodeNeverCrashes) {
  Rng rng(103);
  net::MatchReport report;
  report.policy_chain_id = 1;
  report.sections.push_back(
      net::MiddleboxSection{1,
                            {net::MatchEntry{1, 10, 1},
                             net::MatchEntry{2, 20, 5}}});
  const Bytes encoded = net::encode_report(report, net::ReportCodec::kUniform6);
  for (int i = 0; i < 3000; ++i) {
    try {
      (void)net::decode_report(mutate(encoded, rng));
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST(Robustness, JsonParseNeverCrashes) {
  Rng rng(104);
  const std::string base =
      R"({"type":"add_patterns","middlebox_id":3,)"
      R"("exact":[{"rule":1,"hex":"6576696c"}],"regex":[]})";
  const Bytes base_bytes = to_bytes(base);
  for (int i = 0; i < 3000; ++i) {
    const Bytes corrupted = mutate(base_bytes, rng);
    try {
      (void)json::parse(as_text(corrupted));
    } catch (const json::ParseError&) {
    }
  }
}

TEST(Robustness, AcDeserializeNeverCrashes) {
  Rng rng(105);
  ac::Trie trie;
  trie.insert(std::string_view("pattern-one"), 0);
  trie.insert(std::string_view("two"), 1);
  const Bytes blob = ac::serialize(ac::FullAutomaton::build(trie));
  for (int i = 0; i < 1000; ++i) {
    try {
      (void)ac::deserialize(mutate(blob, rng));
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Robustness, InflateNeverCrashesOrHangs) {
  Rng rng(106);
  const Bytes packed = compress::gzip_compress(
      to_bytes("compressible compressible compressible content"));
  compress::InflateLimits limits;
  limits.max_output = 1 << 16;  // bound work per attempt
  for (int i = 0; i < 2000; ++i) {
    try {
      (void)compress::gzip_decompress(mutate(packed, rng), limits);
    } catch (const compress::InflateError&) {
    }
  }
  // Raw random bytes as a deflate stream.
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.index(100));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    try {
      (void)compress::inflate(garbage, limits);
    } catch (const compress::InflateError&) {
    }
  }
}

TEST(Robustness, ControllerChannelNeverThrowsOnMutatedMessages) {
  // The DPI controller's control channel promises to answer any parseable
  // message — however malformed — with a well-formed response, never an
  // exception (§4.1 registration protocol). Mutate real registration and
  // deregistration traffic and hold it to that.
  Rng rng(108);
  service::DpiController controller;
  const std::vector<std::string> bases = {
      R"({"type":"register","middlebox_id":7,"name":"ids","stateful":true})",
      R"({"type":"unregister","middlebox_id":7})",
      R"({"type":"add_patterns","middlebox_id":7,)"
      R"("exact":[{"rule":1,"hex":"6576696c"}],"regex":[]})",
      R"({"type":"remove_patterns","middlebox_id":7,"rules":[1]})",
  };
  int handled = 0;
  for (int i = 0; i < 2000; ++i) {
    const Bytes corrupted = mutate(to_bytes(bases[i % bases.size()]), rng);
    json::Value message;
    try {
      message = json::parse(as_text(corrupted));
    } catch (const json::ParseError&) {
      continue;  // never reached the controller
    }
    const json::Value reply = controller.handle_message(message);
    ++handled;
    // Every reply is a well-formed {"ok":bool[,"error":string]} object.
    ASSERT_TRUE(reply.is_object());
    const json::Value ok = reply.get_or("ok", json::Value(nullptr));
    ASSERT_TRUE(ok.is_bool());
    if (!ok.as_bool()) {
      ASSERT_TRUE(reply.get_or("error", json::Value(nullptr)).is_string());
    }
  }
  EXPECT_GT(handled, 0);  // some mutants must have survived parsing
}

TEST(Robustness, TraceFromBytesNeverCrashes) {
  Rng rng(107);
  workload::TrafficConfig config;
  config.num_packets = 5;
  const Bytes blob =
      workload::trace_to_bytes(workload::generate_http_trace(config));
  for (int i = 0; i < 1500; ++i) {
    try {
      (void)workload::trace_from_bytes(mutate(blob, rng));
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

}  // namespace
}  // namespace dpisvc
