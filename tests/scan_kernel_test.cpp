// Batched scan kernel vs. the scalar oracle.
//
// The kernel (ac/hot_kernel.hpp) must be invisible in results: every walk —
// single-lane, interleaved, resumed mid-stride, clamped by a stop offset,
// continued scalar after a cold exit — ends exactly where the scalar loop
// would have. The tests here check that four ways:
//   1. raw-walk differential: HotKernel::scan / scan_interleaved against
//      FullAutomaton::scan, including a deliberately truncated (incomplete)
//      core whose cold exits force the scalar continuation;
//   2. engine differential over adversarial reassembly streams: the
//      policy-normalized bytes of evasion traces (overlap conflicts,
//      retransmit storms, shuffles, sequence wraparound) scanned packet-by-
//      packet with carried cursors under kScalar and kBatched;
//   3. boundary pins: stateful resume at non-stride offsets, stop-offset
//      clamps at the boundary byte, interleaved batch == sequential scans;
//   4. the verify layer: check_hot_kernel proves the layout, and
//      cross_check_kernel comes back clean on a live engine (and reports
//      kernel-not-active on a scalar-pinned one).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "ac/full_automaton.hpp"
#include "ac/hot_kernel.hpp"
#include "ac/trie.hpp"
#include "dpi/engine.hpp"
#include "verify/verifier.hpp"
#include "workload/adversarial_gen.hpp"

namespace dpisvc {
namespace {

using MatchKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::uint32_t>;

std::vector<MatchKey> match_set(const dpi::ScanResult& result) {
  std::vector<MatchKey> keys;
  for (const auto& mb : result.matches) {
    for (const auto& entry : mb.entries) {
      keys.emplace_back(mb.middlebox, entry.pattern_id, entry.position,
                        entry.run_length);
    }
  }
  return keys;
}

/// Full-result equality: counters, sections in order, resumed cursor.
void expect_same_result(const dpi::ScanResult& ref, const dpi::ScanResult& got,
                        const std::string& where) {
  EXPECT_EQ(ref.raw_hits, got.raw_hits) << where;
  EXPECT_EQ(ref.bytes_scanned, got.bytes_scanned) << where;
  EXPECT_EQ(ref.anchor_hits_seen, got.anchor_hits_seen) << where;
  EXPECT_EQ(match_set(ref), match_set(got)) << where;
  EXPECT_EQ(ref.cursor.valid, got.cursor.valid) << where;
  EXPECT_EQ(ref.cursor.dfa_state, got.cursor.dfa_state) << where;
  EXPECT_EQ(ref.cursor.offset, got.cursor.offset) << where;
}

ac::FullAutomaton dense_automaton() {
  ac::Trie trie;
  trie.insert("ab", 0);
  trie.insert("abab", 1);
  trie.insert("babba", 2);
  trie.insert("aaaa", 3);
  trie.insert("cabbage", 4);
  return ac::FullAutomaton::build(trie);
}

/// Deterministic a/b/c-heavy stream with frequent pattern hits.
Bytes dense_payload(std::size_t n, std::uint64_t seed) {
  Bytes out;
  out.reserve(n);
  std::uint64_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    static constexpr char kAlpha[] = "aabbabcge";
    out.push_back(static_cast<std::uint8_t>(kAlpha[x % (sizeof(kAlpha) - 1)]));
  }
  return out;
}

std::vector<ac::Match> scalar_events(const ac::FullAutomaton& full,
                                     BytesView data, ac::StateIndex start,
                                     ac::StateIndex* end_state = nullptr) {
  std::vector<ac::Match> events;
  const ac::StateIndex end = full.scan(
      data, start, [&](ac::Match m) { events.push_back(m); });
  if (end_state != nullptr) *end_state = end;
  return events;
}

bool same_events(const std::vector<ac::Match>& a,
                 const std::vector<ac::Match>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].end_offset != b[i].end_offset ||
        a[i].accept_state != b[i].accept_state) {
      return false;
    }
  }
  return true;
}

// --- raw kernel walks --------------------------------------------------------

TEST(HotKernelTest, CompleteCoreScanMatchesScalarWalk) {
  const ac::FullAutomaton full = dense_automaton();
  const ac::HotKernel kernel = ac::HotKernel::build(full);
  ASSERT_TRUE(kernel.available());
  ASSERT_TRUE(kernel.complete());

  // Lengths around the stride boundary (0..9) plus longer bodies: the
  // unrolled stride loop and the per-byte tail must agree with the scalar
  // walk at every cut.
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 63u, 256u}) {
    const Bytes payload = dense_payload(n, n + 1);
    ac::StateIndex want_state = 0;
    const auto want =
        scalar_events(full, BytesView(payload), full.start_state(),
                      &want_state);
    std::vector<ac::Match> got;
    const ac::HotKernel::Lane lane =
        kernel.scan(BytesView(payload), full.start_state(), got);
    EXPECT_EQ(lane.consumed, payload.size()) << "complete core never exits";
    EXPECT_EQ(lane.state, want_state) << "n=" << n;
    EXPECT_TRUE(same_events(want, got)) << "n=" << n;
  }
}

TEST(HotKernelTest, TruncatedCoreColdExitsResumeScalar) {
  const ac::FullAutomaton full = dense_automaton();
  // Cap the core below the full state count: deeper states become cold and
  // the kernel must stop at (not consume) the byte that leaves the core.
  const ac::HotKernel kernel = ac::HotKernel::build(full, full.num_states() - 3);
  ASSERT_TRUE(kernel.available());
  ASSERT_FALSE(kernel.complete());
  ASSERT_LT(kernel.num_hot_states(), full.num_states());

  const Bytes payload = dense_payload(512, 7);
  ac::StateIndex want_state = 0;
  const auto want =
      scalar_events(full, BytesView(payload), full.start_state(), &want_state);

  // Kernel walk + scalar continuation over every cold exit, exactly as the
  // engine stitches them: scan the remainder, shift the call's events to
  // stream offsets, take one scalar byte over the cold transition, repeat.
  std::vector<ac::Match> got;
  std::size_t done = 0;
  ac::StateIndex state = full.start_state();
  bool exited_cold = false;
  while (done < payload.size()) {
    const BytesView rest = BytesView(payload).subspan(done);
    std::vector<ac::Match> call;
    const ac::HotKernel::Lane lane = kernel.scan(rest, state, call);
    for (const ac::Match& m : call) {
      got.push_back(ac::Match{m.end_offset + done, m.accept_state});
    }
    state = lane.state;
    done += lane.consumed;
    if (lane.consumed < rest.size()) {
      exited_cold = true;
      std::vector<ac::Match> one;
      state = full.scan(BytesView(payload).subspan(done, 1), state,
                        [&](ac::Match m) { one.push_back(m); });
      for (const ac::Match& m : one) {
        got.push_back(ac::Match{m.end_offset + done, m.accept_state});
      }
      ++done;
    }
  }
  EXPECT_TRUE(exited_cold) << "payload never left the truncated core";
  EXPECT_EQ(want_state, state);
  EXPECT_TRUE(same_events(want, got));
}

TEST(HotKernelTest, InterleavedLanesEqualSingleLaneScans) {
  const ac::FullAutomaton full = dense_automaton();
  const ac::HotKernel kernel = ac::HotKernel::build(full);
  ASSERT_TRUE(kernel.available());

  // Mixed lengths (empty, tail-only, stride-aligned, long) at full width:
  // lane retirement reorders the dense active set, which must not leak into
  // any lane's results.
  const std::vector<std::size_t> lens = {0, 3, 4, 5, 129, 8, 64, 17};
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    payloads.push_back(dense_payload(lens[i], i + 11));
  }

  std::vector<std::vector<ac::Match>> want(lens.size());
  std::vector<ac::StateIndex> want_state(lens.size());
  for (std::size_t i = 0; i < lens.size(); ++i) {
    std::vector<ac::Match> single;
    const ac::HotKernel::Lane lane =
        kernel.scan(BytesView(payloads[i]), full.start_state(), single);
    want[i] = single;
    want_state[i] = lane.state;
  }

  std::vector<std::vector<ac::Match>> got(lens.size());
  std::vector<ac::HotKernel::Lane> lanes(lens.size());
  for (std::size_t i = 0; i < lens.size(); ++i) {
    lanes[i] = ac::HotKernel::Lane{BytesView(payloads[i]), full.start_state(),
                                   0, &got[i]};
  }
  kernel.scan_interleaved(lanes.data(), lanes.size());
  for (std::size_t i = 0; i < lens.size(); ++i) {
    EXPECT_EQ(lanes[i].consumed, payloads[i].size()) << "lane " << i;
    EXPECT_EQ(lanes[i].state, want_state[i]) << "lane " << i;
    EXPECT_TRUE(same_events(want[i], got[i])) << "lane " << i;
  }
}

// --- engine differential -----------------------------------------------------

std::shared_ptr<const dpi::Engine> kernel_engine(bool with_stop = false) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  dpi::MiddleboxProfile av;
  av.id = 2;
  av.name = "av";
  if (with_stop) {
    ids.stop_offset = 70;
    av.stop_offset = 13;
  }
  spec.middleboxes = {ids, av};
  spec.exact_patterns = {
      dpi::ExactPatternSpec{"ab", 1, 0},
      dpi::ExactPatternSpec{"abab", 1, 1},
      dpi::ExactPatternSpec{"babba", 2, 0},
      dpi::ExactPatternSpec{"aaaa", 2, 1},
      dpi::ExactPatternSpec{"secret-attack", 1, 2},
  };
  spec.chains[1] = {1, 2};
  spec.chains[2] = {2};
  dpi::EngineConfig config;
  config.kernel = dpi::ScanKernel::kBatched;  // explicit: active even under
                                              // DPISVC_FORCE_SCALAR
  return dpi::Engine::compile(spec, config);
}

TEST(ScanKernelEngineTest, StatefulResumeAtNonStrideOffsets) {
  const auto engine = kernel_engine();
  ASSERT_TRUE(engine->kernel_active());

  // "secret-attack" split so every packet ends mid-stride (lengths 3, 5, 7,
  // 6, ...): the cursor's DFA state resumes inside a pattern and inside a
  // stride on every boundary.
  const std::string stream = "xxsecret-attackyyabababbabbaaaaaz";
  for (const std::size_t chunk : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 13u}) {
    dpi::FlowCursor scalar_cursor;
    dpi::FlowCursor kernel_cursor;
    bool saw_long_pattern = false;
    for (std::size_t base = 0; base < stream.size(); base += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - base);
      const BytesView packet(
          reinterpret_cast<const std::uint8_t*>(stream.data()) + base, len);
      const auto ref = engine->scan_packet_as(dpi::ScanKernel::kScalar, 1,
                                              packet, scalar_cursor);
      const auto got = engine->scan_packet_as(dpi::ScanKernel::kBatched, 1,
                                              packet, kernel_cursor);
      expect_same_result(ref, got,
                         "chunk=" + std::to_string(chunk) +
                             " base=" + std::to_string(base));
      scalar_cursor = ref.cursor;
      kernel_cursor = got.cursor;
      for (const MatchKey& key : match_set(got)) {
        // pattern_id 2 on middlebox 1 = "secret-attack", flow-relative end
        // position 15 regardless of how the chunking cut it.
        if (std::get<0>(key) == 1 && std::get<1>(key) == 2) {
          EXPECT_EQ(std::get<2>(key), 15u);
          saw_long_pattern = true;
        }
      }
    }
    EXPECT_TRUE(saw_long_pattern) << "chunk=" << chunk;
  }
}

TEST(ScanKernelEngineTest, StopOffsetBoundariesIdenticalAcrossKernels) {
  const auto engine = kernel_engine(/*with_stop=*/true);
  ASSERT_TRUE(engine->kernel_active());

  // "babba" (middlebox 2, stop 13) ending exactly at the boundary byte vs
  // one past it: inclusive at 13, dropped at 14. Payload sizes straddle the
  // combined clamp so the kernel sees clamped slices of every tail shape.
  for (std::size_t end : {13u, 14u}) {
    std::string payload(end - 5, 'x');
    payload += "babba";
    payload += std::string(70, 'x');  // past both stops
    const BytesView bytes(
        reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
    const auto ref =
        engine->scan_packet_as(dpi::ScanKernel::kScalar, 1, bytes);
    const auto got =
        engine->scan_packet_as(dpi::ScanKernel::kBatched, 1, bytes);
    expect_same_result(ref, got, "end=" + std::to_string(end));
    bool reported = false;
    for (const MatchKey& key : match_set(got)) {
      if (std::get<0>(key) == 2 && std::get<1>(key) == 0) reported = true;
    }
    EXPECT_EQ(reported, end == 13u) << "stop boundary is inclusive";
    // The §5.2 clamp cuts the walk at the largest live stop offset.
    EXPECT_EQ(got.bytes_scanned, 70u);
  }
}

TEST(ScanKernelEngineTest, AdversarialStreamsScanIdentically) {
  const auto engine = kernel_engine();
  ASSERT_TRUE(engine->kernel_active());

  const net::FiveTuple flow{net::Ipv4Addr(10, 0, 0, 1),
                            net::Ipv4Addr(10, 0, 0, 2), 40000, 80,
                            net::IpProto::kTcp};
  Bytes clean;
  for (int i = 0; i < 24; ++i) {
    const std::string piece = "ab-secret-attack-babba-aaaa#" +
                              std::to_string(i);
    clean.insert(clean.end(), piece.begin(), piece.end());
  }

  // Evasion transforms produce policy-normalized streams (decoy bytes,
  // truncated releases, duplicated content); each stream is chunked and
  // scanned packet-by-packet under both kernels with carried cursors.
  std::vector<workload::EvasionSpec> specs(4);
  specs[0].segment_bytes = 8;
  specs[1].seed = 2;
  specs[1].shuffle = true;
  specs[1].retransmit_rate = 0.3;
  specs[2].seed = 3;
  specs[2].conflict = workload::ConflictMode::kDecoyLater;
  specs[2].conflict_rate = 0.5;
  specs[3].seed = 5;
  specs[3].initial_seq = 0xFFFFFFF0u;  // wraparound
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const auto trace =
        workload::make_evasion_trace(flow, BytesView(clean), specs[si]);
    for (const net::OverlapPolicy policy :
         {net::OverlapPolicy::kFirstWins, net::OverlapPolicy::kLastWins}) {
      const auto view = workload::normalize_segments(
          trace.initial_seq, trace.segments, policy);
      for (const std::size_t chunk : {7u, 64u}) {
        dpi::FlowCursor scalar_cursor;
        dpi::FlowCursor kernel_cursor;
        for (std::size_t base = 0; base < view.bytes.size(); base += chunk) {
          const std::size_t len = std::min(chunk, view.bytes.size() - base);
          const BytesView packet(view.bytes.data() + base, len);
          const auto ref = engine->scan_packet_as(dpi::ScanKernel::kScalar, 1,
                                                  packet, scalar_cursor);
          const auto got = engine->scan_packet_as(dpi::ScanKernel::kBatched, 1,
                                                  packet, kernel_cursor);
          expect_same_result(ref, got,
                             "spec=" + std::to_string(si) +
                                 " chunk=" + std::to_string(chunk) +
                                 " base=" + std::to_string(base));
          scalar_cursor = ref.cursor;
          kernel_cursor = got.cursor;
        }
      }
    }
  }
}

TEST(ScanKernelEngineTest, InterleavedBatchEqualsSequentialScans) {
  const auto engine = kernel_engine();
  ASSERT_TRUE(engine->kernel_active());

  // 29 packets (three full interleave groups of 8 + a partial group of 5)
  // with mixed lengths, including empties.
  std::vector<Bytes> storage;
  for (std::size_t i = 0; i < 29; ++i) {
    storage.push_back(dense_payload((i * 13) % 90, i + 3));
  }
  std::vector<BytesView> payloads;
  for (const Bytes& b : storage) payloads.emplace_back(b);

  const auto batch =
      engine->scan_batch_as(dpi::ScanKernel::kBatched, 2, payloads, nullptr);
  ASSERT_EQ(batch.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const auto ref =
        engine->scan_packet_as(dpi::ScanKernel::kScalar, 2, payloads[i]);
    expect_same_result(ref, batch[i], "packet " + std::to_string(i));
  }
}

// --- verify layer ------------------------------------------------------------

TEST(ScanKernelVerifyTest, LayoutProofAndCrossCheckComeBackClean) {
  const auto engine = kernel_engine();
  const auto* full = std::get_if<ac::FullAutomaton>(&engine->automaton());
  ASSERT_NE(full, nullptr);
  ASSERT_NE(engine->hot_kernel(), nullptr);

  const auto layout = verify::check_hot_kernel(*full, *engine->hot_kernel());
  EXPECT_TRUE(layout.empty()) << (layout.empty() ? "" : layout[0].code + ": " +
                                                            layout[0].message);

  std::vector<std::vector<Bytes>> flows;
  for (std::size_t f = 0; f < 3; ++f) {
    std::vector<Bytes> packets;
    for (std::size_t p = 0; p < 6; ++p) {
      packets.push_back(dense_payload(5 + 17 * p + f, f * 31 + p));
    }
    flows.push_back(std::move(packets));
  }
  const auto diffs = verify::cross_check_kernel(*engine, 1, flows);
  EXPECT_TRUE(diffs.empty()) << (diffs.empty() ? "" : diffs[0].code + ": " +
                                                          diffs[0].message);
}

TEST(ScanKernelVerifyTest, CrossCheckReportsScalarPinnedEngine) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{"ab", 1, 0}};
  spec.chains[1] = {1};
  dpi::EngineConfig config;
  config.kernel = dpi::ScanKernel::kScalar;
  const auto engine = dpi::Engine::compile(spec, config);
  EXPECT_FALSE(engine->kernel_active());

  const auto diffs = verify::cross_check_kernel(*engine, 1, {});
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].code, "kernel-not-active");
}

TEST(ScanKernelVerifyTest, LayoutProofFlagsTruncatedCoreAsIncomplete) {
  const ac::FullAutomaton full = dense_automaton();
  const ac::HotKernel kernel =
      ac::HotKernel::build(full, full.num_states() - 3);
  ASSERT_TRUE(kernel.available());
  ASSERT_FALSE(kernel.complete());
  // A correctly-built truncated core still passes the layout proof — the
  // proof checks the encoding (maps, depth closure, transitions), not
  // completeness.
  const auto layout = verify::check_hot_kernel(full, kernel);
  EXPECT_TRUE(layout.empty()) << (layout.empty() ? "" : layout[0].code);
}

}  // namespace
}  // namespace dpisvc
