// Determinism of the sharded multi-threaded scan path (tier-1).
//
// The sharded data plane promises that parallelism is invisible in the
// results: a flow's packets always land on the shard that owns its cursor
// and are scanned in submission order, so scan_batch() must produce
// byte-identical match sets for every worker count — including the
// single-threaded inline configuration — and all of them must equal a
// plain single-threaded reference over the engine with a per-flow cursor
// map.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dpi/engine.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {
namespace {

std::shared_ptr<const dpi::Engine> mt_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";  // stateless
  dpi::MiddleboxProfile av;
  av.id = 2;
  av.name = "av";
  av.stateful = true;
  dpi::MiddleboxProfile hdr;
  hdr.id = 3;
  hdr.name = "hdr";  // bounded scan depth
  hdr.stop_offset = 24;
  spec.middleboxes = {ids, av, hdr};
  spec.exact_patterns = {
      dpi::ExactPatternSpec{"evil", 1, 0},
      dpi::ExactPatternSpec{"GET /", 1, 1},
      dpi::ExactPatternSpec{"splitpattern", 2, 0},
      dpi::ExactPatternSpec{"virus", 2, 1},
      dpi::ExactPatternSpec{"HTTP", 3, 0},
  };
  spec.chains[1] = {1, 3};     // stateless chain
  spec.chains[2] = {1, 2, 3};  // stateful chain
  return dpi::Engine::compile(spec);
}

struct TracePacket {
  dpi::ChainId chain = 0;
  net::FiveTuple flow;
  Bytes payload;
};

/// Interleaved multi-flow trace: per-flow streams with patterns planted to
/// straddle packet boundaries, segmented randomly and round-robin merged.
std::vector<TracePacket> make_trace() {
  Rng rng(20140814);  // CoNEXT'14 vintage
  const std::size_t kFlows = 12;
  struct FlowState {
    dpi::ChainId chain;
    net::FiveTuple tuple;
    std::vector<Bytes> packets;
    std::size_t next = 0;
  };
  std::vector<FlowState> flows;
  for (std::size_t f = 0; f < kFlows; ++f) {
    FlowState fs;
    fs.chain = (f % 2 == 0) ? dpi::ChainId{2} : dpi::ChainId{1};
    fs.tuple =
        net::FiveTuple{net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(f), 1),
                       net::Ipv4Addr(10, 1, 1, 1),
                       static_cast<std::uint16_t>(1000 + f), 80,
                       net::IpProto::kTcp};
    // Build the flow's stream with planted patterns.
    std::string stream = "GET /index HTTP/1.1 ";
    for (int i = 0; i < 30; ++i) {
      switch (rng.index(5)) {
        case 0: stream += "splitpattern"; break;
        case 1: stream += "evil"; break;
        case 2: stream += "virus"; break;
        default:
          for (std::size_t j = 0; j < 1 + rng.index(20); ++j) {
            stream.push_back(static_cast<char>('a' + rng.index(26)));
          }
      }
    }
    // Random segmentation so patterns straddle packet boundaries.
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.index(25), stream.size() - at);
      fs.packets.push_back(to_bytes(stream.substr(at, take)));
      at += take;
    }
    flows.push_back(std::move(fs));
  }
  // Random interleave preserving per-flow order.
  std::vector<TracePacket> trace;
  for (;;) {
    std::vector<std::size_t> pending;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (flows[f].next < flows[f].packets.size()) pending.push_back(f);
    }
    if (pending.empty()) break;
    FlowState& fs = flows[pending[rng.index(pending.size())]];
    trace.push_back(
        TracePacket{fs.chain, fs.tuple, fs.packets[fs.next++]});
  }
  return trace;
}

/// Canonical serialization of an ordered result sequence; byte-identical
/// strings mean identical match sets, positions, and cursors' effects.
std::string serialize(const std::vector<dpi::ScanResult>& results) {
  std::ostringstream out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "#" << i << ":" << results[i].bytes_scanned << ";";
    for (const auto& section : results[i].matches) {
      if (section.entries.empty()) continue;
      out << "m" << section.middlebox << "{";
      for (const auto& e : section.entries) {
        out << e.pattern_id << "@" << e.position << "x" << e.run_length << ",";
      }
      out << "}";
    }
    out << "\n";
  }
  return out.str();
}

TEST(ScanMt, BatchMatchesSingleThreadedReferenceForAllWorkerCounts) {
  const auto engine = mt_engine();
  const auto trace = make_trace();
  ASSERT_GT(trace.size(), 100u);

  // Single-threaded reference: the seed path — one scan_packet per packet,
  // cursors in a plain per-flow map.
  std::vector<dpi::ScanResult> reference;
  std::map<std::uint64_t, dpi::FlowCursor> cursors;
  for (const TracePacket& p : trace) {
    dpi::FlowCursor& cursor = cursors[p.flow.canonical().hash()];
    auto result = engine->scan_packet(p.chain, BytesView(p.payload), cursor);
    if (engine->chain_stateful(p.chain)) cursor = result.cursor;
    reference.push_back(std::move(result));
  }
  const std::string expected = serialize(reference);
  ASSERT_NE(expected.find("m2{"), std::string::npos)
      << "trace must exercise stateful straddling matches";

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    InstanceConfig config;
    config.num_workers = workers;
    DpiInstance inst("mt" + std::to_string(workers), config);
    inst.load_engine(engine, 1);
    ASSERT_EQ(inst.num_shards(), workers);

    std::vector<dpi::ScanResult> results;
    const std::size_t kBatch = 64;
    for (std::size_t base = 0; base < trace.size(); base += kBatch) {
      std::vector<ScanItem> items;
      for (std::size_t i = base; i < std::min(base + kBatch, trace.size());
           ++i) {
        items.push_back(ScanItem{trace[i].chain, trace[i].flow,
                                 BytesView(trace[i].payload)});
      }
      auto batch = inst.scan_batch(items);
      for (auto& r : batch) results.push_back(std::move(r));
    }
    EXPECT_EQ(serialize(results), expected) << "workers=" << workers;
    EXPECT_EQ(inst.telemetry().packets, trace.size());
  }
}

TEST(ScanMt, EngineBatchEqualsPerPacketScan) {
  const auto engine = mt_engine();
  const auto trace = make_trace();
  // Stateless chain packets only: the engine-level batch API needs no
  // cursor management for them.
  std::vector<BytesView> payloads;
  std::vector<dpi::ScanResult> reference;
  for (const TracePacket& p : trace) {
    if (p.chain != 1) continue;
    payloads.emplace_back(p.payload);
    reference.push_back(engine->scan_packet(1, BytesView(p.payload)));
  }
  const auto batch = engine->scan_batch(1, payloads);
  EXPECT_EQ(serialize(batch), serialize(reference));
}

TEST(ScanMt, EngineBatchValidatesInputs) {
  const auto engine = mt_engine();
  std::vector<BytesView> payloads(3);
  EXPECT_THROW(engine->scan_batch(99, payloads), std::invalid_argument);
  std::vector<dpi::FlowCursor> cursors(2);  // size mismatch
  EXPECT_THROW(engine->scan_batch(2, payloads, &cursors),
               std::invalid_argument);
}

}  // namespace
}  // namespace dpisvc::service
