// Tests for the DPI controller: JSON channel handling, chain registry,
// instance sync, placement, and MCA² mitigation (§4.1, §4.3, §4.3.1).
#include <gtest/gtest.h>

#include "service/controller.hpp"

namespace dpisvc::service {
namespace {

json::Value register_msg(int id, const char* name) {
  return json::parse(R"({"type":"register","middlebox_id":)" +
                     std::to_string(id) + R"(,"name":")" + name + R"("})");
}

json::Value add_exact_msg(int id, int rule, const std::string& text) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.exact.push_back(
      ExactPatternMsg{static_cast<dpi::PatternId>(rule), text});
  return encode(req);
}

net::FiveTuple flow(std::uint16_t port) {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        port, 80, net::IpProto::kTcp};
}

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(Controller, JsonRegistrationFlow) {
  DpiController controller;
  EXPECT_TRUE(response_ok(controller.handle_message(register_msg(1, "ids"))));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "attack"))));
  EXPECT_TRUE(controller.db().is_registered(1));
  EXPECT_EQ(controller.db().num_distinct_exact(), 1u);
}

TEST(Controller, JsonErrorsAreResponsesNotExceptions) {
  DpiController controller;
  // Unknown type.
  EXPECT_FALSE(response_ok(
      controller.handle_message(json::parse(R"({"type":"dance"})"))));
  // Add for unregistered middlebox.
  EXPECT_FALSE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "x"))));
  // Duplicate registration.
  controller.handle_message(register_msg(1, "a"));
  EXPECT_FALSE(response_ok(controller.handle_message(register_msg(1, "b"))));
  // Remove of unknown rule.
  RemovePatternsRequest remove;
  remove.middlebox = 1;
  remove.rules = {42};
  EXPECT_FALSE(response_ok(controller.handle_message(encode(remove))));
  // Unregister of unknown middlebox.
  EXPECT_FALSE(response_ok(
      controller.handle_message(encode(UnregisterRequest{5}))));
}

TEST(Controller, RegistrationWithInheritance) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "shared-sig"));
  RegisterRequest clone;
  clone.profile.id = 2;
  clone.profile.name = "ids2";
  clone.inherit_from = 1;
  EXPECT_TRUE(response_ok(controller.handle_message(encode(clone))));
  EXPECT_EQ(controller.db().num_references(2), 1u);
}

TEST(Controller, PolicyChainRegistryDeduplicates) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  controller.handle_message(register_msg(2, "b"));
  const dpi::ChainId c1 = controller.register_policy_chain({1, 2});
  const dpi::ChainId c2 = controller.register_policy_chain({2});
  const dpi::ChainId c3 = controller.register_policy_chain({1, 2});
  EXPECT_NE(c1, c2);
  EXPECT_EQ(c1, c3);  // identical sequences share the id
  EXPECT_THROW(controller.register_policy_chain({9}), std::invalid_argument);
}

TEST(Controller, InstancesReceiveEngineAndUpdates) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  const dpi::ChainId chain = controller.register_policy_chain({1});

  auto inst = controller.create_instance("i1");
  ASSERT_TRUE(inst->has_engine());
  const std::uint64_t v1 = inst->engine_version();
  auto result = inst->scan(chain, flow(1), view("an attack!"));
  EXPECT_TRUE(result.has_matches());

  // Adding a pattern recompiles and pushes automatically.
  controller.handle_message(add_exact_msg(1, 1, "new-threat"));
  EXPECT_GT(inst->engine_version(), v1);
  result = inst->scan(chain, flow(1), view("a new-threat arrives"));
  EXPECT_TRUE(result.has_matches());

  // Removing the rule stops it from matching.
  RemovePatternsRequest remove;
  remove.middlebox = 1;
  remove.rules = {1};
  EXPECT_TRUE(response_ok(controller.handle_message(encode(remove))));
  result = inst->scan(chain, flow(1), view("a new-threat arrives"));
  EXPECT_FALSE(result.has_matches());
}

TEST(Controller, DedicatedInstanceGetsCompressedEngine) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  InstanceConfig dedicated;
  dedicated.dedicated = true;
  auto regular = controller.create_instance("reg");
  auto special = controller.create_instance("ded", dedicated);
  ASSERT_TRUE(regular->has_engine());
  ASSERT_TRUE(special->has_engine());
  EXPECT_FALSE(regular->engine()->uses_compressed_automaton());
  EXPECT_TRUE(special->engine()->uses_compressed_automaton());
  EXPECT_EQ(regular->engine_version(), special->engine_version());
}

TEST(Controller, InstanceLifecycle) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  controller.create_instance("i1");
  EXPECT_THROW(controller.create_instance("i1"), std::invalid_argument);
  EXPECT_NE(controller.instance("i1"), nullptr);
  EXPECT_EQ(controller.instance("ghost"), nullptr);
  EXPECT_EQ(controller.instance_names(),
            (std::vector<std::string>{"i1"}));
  EXPECT_TRUE(controller.remove_instance("i1"));
  EXPECT_FALSE(controller.remove_instance("i1"));
}

TEST(Controller, PlacementLeastLoaded) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  const dpi::ChainId c1 = controller.register_policy_chain({1});
  controller.handle_message(register_msg(2, "b"));
  const dpi::ChainId c2 = controller.register_policy_chain({2});
  const dpi::ChainId c3 = controller.register_policy_chain({1, 2});
  controller.create_instance("i1");
  controller.create_instance("i2");

  const std::string first = controller.auto_assign_chain(c1);
  const std::string second = controller.auto_assign_chain(c2);
  EXPECT_NE(first, second);  // least-loaded spreads chains
  controller.auto_assign_chain(c3);
  EXPECT_EQ(controller.assignments().size(), 3u);
  EXPECT_TRUE(controller.instance_for_chain(c1).has_value());
  EXPECT_FALSE(controller.instance_for_chain(999).has_value());

  EXPECT_THROW(controller.assign_chain(999, "i1"), std::invalid_argument);
  EXPECT_THROW(controller.assign_chain(c1, "ghost"), std::invalid_argument);
}

TEST(Controller, RemoveInstanceUnassignsChains) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  const dpi::ChainId chain = controller.register_policy_chain({1});
  controller.create_instance("i1");
  controller.assign_chain(chain, "i1");
  controller.remove_instance("i1");
  EXPECT_FALSE(controller.instance_for_chain(chain).has_value());
}

// --- MCA² -----------------------------------------------------------------------

class Mca2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    StressConfig stress;
    stress.hits_per_byte_threshold = 0.02;
    stress.min_window_bytes = 1024;
    stress.smoothing_windows = 2;
    controller_ = std::make_unique<DpiController>(stress);
    controller_->handle_message(register_msg(1, "ids"));
    controller_->handle_message(add_exact_msg(1, 0, "attacksig"));
    controller_->handle_message(add_exact_msg(1, 1, "benignsig"));
    chain_ = controller_->register_policy_chain({1});
    regular_ = controller_->create_instance("regular");
    InstanceConfig dedicated;
    dedicated.dedicated = true;
    dedicated_ = controller_->create_instance("dedicated", dedicated);
    controller_->assign_chain(chain_, "regular");
  }

  void pump_traffic(DpiInstance& inst, const std::string& payload, int n) {
    for (int i = 0; i < n; ++i) {
      inst.scan(chain_, flow(static_cast<std::uint16_t>(i % 8)), view(payload));
    }
  }

  std::unique_ptr<DpiController> controller_;
  std::shared_ptr<DpiInstance> regular_;
  std::shared_ptr<DpiInstance> dedicated_;
  dpi::ChainId chain_ = 0;
};

TEST_F(Mca2Test, BenignTrafficTriggersNothing) {
  pump_traffic(*regular_, "plenty of ordinary web content with no signatures "
                          "whatsoever, just text flowing through the wire....",
               50);
  controller_->collect_telemetry();
  const MitigationPlan plan = controller_->evaluate_mitigation();
  EXPECT_TRUE(plan.stressed_instances.empty());
  EXPECT_TRUE(plan.empty());
}

TEST_F(Mca2Test, AttackTrafficTriggersMigrationToDedicated) {
  // Adversarial payload: back-to-back signatures -> dense accepting hits.
  std::string attack;
  for (int i = 0; i < 20; ++i) attack += "attacksig";
  pump_traffic(*regular_, attack, 50);
  controller_->collect_telemetry();
  EXPECT_TRUE(controller_->stress_monitor().is_stressed("regular"));

  const MitigationPlan plan = controller_->evaluate_mitigation();
  ASSERT_EQ(plan.migrations.size(), 1u);
  EXPECT_EQ(plan.migrations[0].chain, chain_);
  EXPECT_EQ(plan.migrations[0].from_instance, "regular");
  EXPECT_EQ(plan.migrations[0].to_instance, "dedicated");

  EXPECT_EQ(controller_->apply_mitigation(plan), 1u);
  EXPECT_EQ(controller_->instance_for_chain(chain_), "dedicated");
  // Applying the same plan twice is a no-op.
  EXPECT_EQ(controller_->apply_mitigation(plan), 0u);
}

TEST_F(Mca2Test, NoDedicatedInstanceMeansEmptyPlan) {
  controller_->remove_instance("dedicated");
  std::string attack;
  for (int i = 0; i < 20; ++i) attack += "attacksig";
  pump_traffic(*regular_, attack, 50);
  controller_->collect_telemetry();
  const MitigationPlan plan = controller_->evaluate_mitigation();
  EXPECT_FALSE(plan.stressed_instances.empty());
  EXPECT_TRUE(plan.empty());
}

TEST_F(Mca2Test, FlowMigrationBetweenInstances) {
  // Make the chain stateful so there is flow state to move.
  controller_->handle_message(json::parse(
      R"({"type":"unregister","middlebox_id":1})"));
  controller_->handle_message(json::parse(
      R"({"type":"register","middlebox_id":1,"name":"ids","stateful":true})"));
  controller_->handle_message(add_exact_msg(1, 0, "attacksig"));
  const dpi::ChainId chain = controller_->register_policy_chain({1});

  regular_->scan(chain, flow(3), view("some bytes"));
  EXPECT_EQ(regular_->active_flows(), 1u);
  EXPECT_TRUE(controller_->migrate_flow(flow(3), "regular", "dedicated"));
  EXPECT_EQ(regular_->active_flows(), 0u);
  EXPECT_EQ(dedicated_->active_flows(), 1u);
  // Unknown flow / instance combinations fail cleanly.
  EXPECT_FALSE(controller_->migrate_flow(flow(9), "regular", "dedicated"));
  EXPECT_FALSE(controller_->migrate_flow(flow(3), "ghost", "dedicated"));
}

TEST(StressMonitor, SmoothingAndThresholds) {
  StressConfig config;
  config.hits_per_byte_threshold = 0.1;
  config.min_window_bytes = 100;
  config.smoothing_windows = 2;
  StressMonitor monitor(config);

  InstanceTelemetry quiet;
  quiet.bytes = 1000;
  quiet.raw_hits = 10;  // 0.01
  monitor.report("a", quiet);
  EXPECT_FALSE(monitor.is_stressed("a"));
  EXPECT_DOUBLE_EQ(monitor.smoothed_signal("a"), 0.01);

  InstanceTelemetry loud;
  loud.bytes = 1000;
  loud.raw_hits = 500;  // 0.5
  monitor.report("a", loud);
  // Average over the 2-window history: (10+500)/2000 = 0.255.
  EXPECT_TRUE(monitor.is_stressed("a"));
  monitor.report("a", loud);  // quiet window rotated out
  EXPECT_DOUBLE_EQ(monitor.smoothed_signal("a"), 0.5);

  // Below min_window_bytes the signal is suppressed.
  StressMonitor small(config);
  InstanceTelemetry tiny;
  tiny.bytes = 50;
  tiny.raw_hits = 50;
  small.report("b", tiny);
  EXPECT_FALSE(small.is_stressed("b"));

  monitor.forget("a");
  EXPECT_FALSE(monitor.is_stressed("a"));
  EXPECT_TRUE(monitor.stressed_instances().empty());
}

// --- admission control (static pattern-set analysis) -------------------------

json::Value add_regex_msg(int id, int rule, const std::string& expr) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.regex.push_back(
      RegexPatternMsg{static_cast<dpi::PatternId>(rule), expr, false});
  return encode(req);
}

std::string response_code(const json::Value& reply) {
  return reply.at("code").as_string();
}

std::uint64_t counter_value(DpiController& c, const std::string& name) {
  return c.metrics().counter(name).value();
}

TEST(Admission, TypedRejectionCodesAndCounters) {
  DpiController controller;
  // Decode failure: middlebox_id is a string.
  auto reply = controller.handle_message(
      json::parse(R"({"type":"add_patterns","middlebox_id":"x"})"));
  EXPECT_FALSE(response_ok(reply));
  EXPECT_EQ(response_code(reply), "decode-error");
  // Unknown message type.
  reply = controller.handle_message(json::parse(R"({"type":"dance"})"));
  EXPECT_EQ(response_code(reply), "unknown-message-type");
  EXPECT_EQ(counter_value(controller, "admission.rejected.decode_error"), 2u);

  // Add for an unregistered middlebox.
  reply = controller.handle_message(add_exact_msg(1, 0, "x"));
  EXPECT_EQ(response_code(reply), "unknown-middlebox");

  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));

  // Duplicate middlebox registration.
  reply = controller.handle_message(register_msg(1, "other"));
  EXPECT_EQ(response_code(reply), "duplicate-registration");
  // Duplicate rule id (against the db).
  reply = controller.handle_message(add_exact_msg(1, 0, "again"));
  EXPECT_EQ(response_code(reply), "duplicate-rule");
  // Oversize pattern.
  reply = controller.handle_message(
      add_exact_msg(1, 1, std::string(dpi::kMaxPatternBytes + 1, 'a')));
  EXPECT_EQ(response_code(reply), "pattern-too-long");
  // Unknown rule on remove.
  RemovePatternsRequest remove;
  remove.middlebox = 1;
  remove.rules = {42};
  reply = controller.handle_message(encode(remove));
  EXPECT_EQ(response_code(reply), "unknown-rule");
  // Unregister of an unknown middlebox.
  reply = controller.handle_message(encode(UnregisterRequest{5}));
  EXPECT_EQ(response_code(reply), "unknown-middlebox");

  EXPECT_EQ(counter_value(controller, "admission.rejected.duplicate_rule"),
            2u);  // duplicate-registration + duplicate-rule
  EXPECT_EQ(counter_value(controller, "admission.rejected.oversize_pattern"),
            1u);
  EXPECT_EQ(counter_value(controller, "admission.rejected.unknown_middlebox"),
            2u);
  EXPECT_EQ(counter_value(controller, "admission.rejected.unknown_rule"), 1u);
  EXPECT_EQ(counter_value(controller, "admission.accepted"), 2u);
}

TEST(Admission, AddPatternsIsAllOrNothing) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  // Second pattern duplicates the first within one request: nothing lands.
  AddPatternsRequest req;
  req.middlebox = 1;
  req.exact.push_back(ExactPatternMsg{7, "aaa"});
  req.exact.push_back(ExactPatternMsg{7, "bbb"});
  const auto reply = controller.handle_message(encode(req));
  EXPECT_EQ(response_code(reply), "duplicate-rule");
  EXPECT_EQ(controller.db().num_distinct_exact(), 0u);
  // Ditto across the exact/regex halves of one request.
  AddPatternsRequest mixed;
  mixed.middlebox = 1;
  mixed.exact.push_back(ExactPatternMsg{8, "ccc"});
  mixed.regex.push_back(RegexPatternMsg{8, "d+", false});
  EXPECT_EQ(response_code(controller.handle_message(encode(mixed))),
            "duplicate-rule");
  EXPECT_EQ(controller.db().num_distinct_exact(), 0u);
}

TEST(Admission, MalformedRegexRejectedBeforeDbMutation) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  auto inst = controller.create_instance("i1");
  const std::uint64_t v1 = inst->engine_version();

  // Unbalanced paren: parse fails. Before admission analysis this poisoned
  // the PatternDb — add_regex stores without parsing, so every later
  // compile (sync) threw. Now the request dies at the gate, typed.
  const auto reply = controller.handle_message(add_regex_msg(1, 1, "evil("));
  EXPECT_FALSE(response_ok(reply));
  EXPECT_EQ(response_code(reply), "regex-syntax-error");
  EXPECT_EQ(
      counter_value(controller, "admission.rejected.invalid_regex"), 1u);

  // The service keeps working: a valid follow-up add compiles and pushes.
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_regex_msg(1, 1, "evil[0-9]+"))));
  EXPECT_GT(inst->engine_version(), v1);
}

TEST(Admission, BlowupSetRejectedWhileAdmittedTenantsKeepScanning) {
  DpiController controller;
  AdmissionConfig admission;
  admission.budget.max_regex_dfa_states = 256;
  admission.budget.max_automaton_states = 64;
  controller.set_admission_config(admission);

  controller.handle_message(register_msg(1, "ids"));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "attack"))));
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto inst = controller.create_instance("i1");

  // Registering the greedy tenant is itself fine (no patterns yet) and
  // bumps the engine like any db change; the baseline version to hold is
  // the one after it.
  controller.handle_message(register_msg(2, "greedy"));
  const std::uint64_t v1 = inst->engine_version();
  // A classic subset-construction blow-up: k unanchored wildcard gaps
  // multiply reachable state sets.
  auto reply = controller.handle_message(
      add_regex_msg(2, 0, ".{16}a.{16}b.{16}c.{16}d.{16}e"));
  EXPECT_FALSE(response_ok(reply));
  EXPECT_EQ(response_code(reply), "regex-dfa-blowup");
  // The rejection carries the full diagnostics array.
  const auto& diags = reply.at("diagnostics").as_array();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].at("code").as_string(), "regex-dfa-blowup");

  // Combined-automaton state budget: many long distinct strings.
  AddPatternsRequest big;
  big.middlebox = 2;
  for (int i = 0; i < 8; ++i) {
    big.exact.push_back(ExactPatternMsg{
        static_cast<dpi::PatternId>(100 + i),
        "unique-long-signature-" + std::to_string(i) + "-padding-padding"});
  }
  reply = controller.handle_message(encode(big));
  EXPECT_FALSE(response_ok(reply));
  EXPECT_EQ(response_code(reply), "states-over-budget");
  EXPECT_EQ(counter_value(controller, "admission.rejected.over_budget"), 2u);

  // The admitted tenant never noticed: same engine, still matching.
  EXPECT_EQ(inst->engine_version(), v1);
  EXPECT_TRUE(inst->scan(chain, flow(1), view("an attack!")).has_matches());
  // And the rejected tenant's db state is untouched, so a conforming add
  // still goes through.
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(2, 0, "small"))));
}

TEST(Admission, InheritedPatternsAreNotRecharged) {
  DpiController controller;
  AdmissionConfig admission;
  admission.budget.max_patterns_per_middlebox = 2;
  controller.set_admission_config(admission);

  controller.handle_message(register_msg(1, "parent"));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "sig-a"))));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(1, 1, "sig-b"))));
  // Parent is at quota; one more is rejected by the analyzer.
  EXPECT_EQ(response_code(controller.handle_message(add_exact_msg(1, 2, "c"))),
            "middlebox-quota-exceeded");

  // §4.1 inheritance copies references to already-admitted patterns: the
  // clone registers fine even though its inherited set sits at the quota —
  // no re-analysis, no re-charge.
  RegisterRequest clone;
  clone.profile.id = 2;
  clone.profile.name = "clone";
  clone.inherit_from = 1;
  EXPECT_TRUE(response_ok(controller.handle_message(encode(clone))));
  EXPECT_EQ(controller.db().num_references(2), 2u);
  const std::uint64_t runs_after_inherit =
      counter_value(controller, "analysis.runs");

  // The clone's *next own* add is analyzed, and the inherited patterns do
  // count toward its quota then (they are its patterns now).
  EXPECT_EQ(response_code(controller.handle_message(add_exact_msg(2, 5, "d"))),
            "middlebox-quota-exceeded");
  EXPECT_GT(counter_value(controller, "analysis.runs"), runs_after_inherit);

  // Unregistering the parent keeps accounting consistent: the clone still
  // references the shared patterns, so its quota stays used...
  EXPECT_TRUE(
      response_ok(controller.handle_message(encode(UnregisterRequest{1}))));
  EXPECT_EQ(response_code(controller.handle_message(add_exact_msg(2, 5, "d"))),
            "middlebox-quota-exceeded");
  // ...while a fresh tenant starts from zero against the same budget.
  controller.handle_message(register_msg(3, "fresh"));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(3, 0, "sig-z"))));
}

TEST(Admission, TelemetryCarriesControllerMetrics) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  controller.handle_message(add_exact_msg(1, 0, "dup"));  // rejected

  const auto reply =
      controller.handle_message(json::parse(R"({"type":"telemetry_query"})"));
  ASSERT_TRUE(response_ok(reply));
  const auto& metrics = reply.at("controller");
  const auto& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("admission.accepted").as_int(), 2);
  EXPECT_EQ(counters.at("admission.rejected.duplicate_rule").as_int(), 1);
  // The duplicate died at structural pre-validation, before analysis: only
  // the accepted add ran the analyzer.
  EXPECT_EQ(counters.at("analysis.runs").as_int(), 1);
  // The analyzer's latest prediction is exported as gauges.
  EXPECT_GT(metrics.at("gauges").at("analysis.predicted_states").as_int(), 0);
}

}  // namespace
}  // namespace dpisvc::service
