// Tests for the DPI controller: JSON channel handling, chain registry,
// instance sync, placement, and MCA² mitigation (§4.1, §4.3, §4.3.1).
#include <gtest/gtest.h>

#include "service/controller.hpp"

namespace dpisvc::service {
namespace {

json::Value register_msg(int id, const char* name) {
  return json::parse(R"({"type":"register","middlebox_id":)" +
                     std::to_string(id) + R"(,"name":")" + name + R"("})");
}

json::Value add_exact_msg(int id, int rule, const std::string& text) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.exact.push_back(
      ExactPatternMsg{static_cast<dpi::PatternId>(rule), text});
  return encode(req);
}

net::FiveTuple flow(std::uint16_t port) {
  return net::FiveTuple{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        port, 80, net::IpProto::kTcp};
}

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(Controller, JsonRegistrationFlow) {
  DpiController controller;
  EXPECT_TRUE(response_ok(controller.handle_message(register_msg(1, "ids"))));
  EXPECT_TRUE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "attack"))));
  EXPECT_TRUE(controller.db().is_registered(1));
  EXPECT_EQ(controller.db().num_distinct_exact(), 1u);
}

TEST(Controller, JsonErrorsAreResponsesNotExceptions) {
  DpiController controller;
  // Unknown type.
  EXPECT_FALSE(response_ok(
      controller.handle_message(json::parse(R"({"type":"dance"})"))));
  // Add for unregistered middlebox.
  EXPECT_FALSE(
      response_ok(controller.handle_message(add_exact_msg(1, 0, "x"))));
  // Duplicate registration.
  controller.handle_message(register_msg(1, "a"));
  EXPECT_FALSE(response_ok(controller.handle_message(register_msg(1, "b"))));
  // Remove of unknown rule.
  RemovePatternsRequest remove;
  remove.middlebox = 1;
  remove.rules = {42};
  EXPECT_FALSE(response_ok(controller.handle_message(encode(remove))));
  // Unregister of unknown middlebox.
  EXPECT_FALSE(response_ok(
      controller.handle_message(encode(UnregisterRequest{5}))));
}

TEST(Controller, RegistrationWithInheritance) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "shared-sig"));
  RegisterRequest clone;
  clone.profile.id = 2;
  clone.profile.name = "ids2";
  clone.inherit_from = 1;
  EXPECT_TRUE(response_ok(controller.handle_message(encode(clone))));
  EXPECT_EQ(controller.db().num_references(2), 1u);
}

TEST(Controller, PolicyChainRegistryDeduplicates) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  controller.handle_message(register_msg(2, "b"));
  const dpi::ChainId c1 = controller.register_policy_chain({1, 2});
  const dpi::ChainId c2 = controller.register_policy_chain({2});
  const dpi::ChainId c3 = controller.register_policy_chain({1, 2});
  EXPECT_NE(c1, c2);
  EXPECT_EQ(c1, c3);  // identical sequences share the id
  EXPECT_THROW(controller.register_policy_chain({9}), std::invalid_argument);
}

TEST(Controller, InstancesReceiveEngineAndUpdates) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  const dpi::ChainId chain = controller.register_policy_chain({1});

  auto inst = controller.create_instance("i1");
  ASSERT_TRUE(inst->has_engine());
  const std::uint64_t v1 = inst->engine_version();
  auto result = inst->scan(chain, flow(1), view("an attack!"));
  EXPECT_TRUE(result.has_matches());

  // Adding a pattern recompiles and pushes automatically.
  controller.handle_message(add_exact_msg(1, 1, "new-threat"));
  EXPECT_GT(inst->engine_version(), v1);
  result = inst->scan(chain, flow(1), view("a new-threat arrives"));
  EXPECT_TRUE(result.has_matches());

  // Removing the rule stops it from matching.
  RemovePatternsRequest remove;
  remove.middlebox = 1;
  remove.rules = {1};
  EXPECT_TRUE(response_ok(controller.handle_message(encode(remove))));
  result = inst->scan(chain, flow(1), view("a new-threat arrives"));
  EXPECT_FALSE(result.has_matches());
}

TEST(Controller, DedicatedInstanceGetsCompressedEngine) {
  DpiController controller;
  controller.handle_message(register_msg(1, "ids"));
  controller.handle_message(add_exact_msg(1, 0, "attack"));
  InstanceConfig dedicated;
  dedicated.dedicated = true;
  auto regular = controller.create_instance("reg");
  auto special = controller.create_instance("ded", dedicated);
  ASSERT_TRUE(regular->has_engine());
  ASSERT_TRUE(special->has_engine());
  EXPECT_FALSE(regular->engine()->uses_compressed_automaton());
  EXPECT_TRUE(special->engine()->uses_compressed_automaton());
  EXPECT_EQ(regular->engine_version(), special->engine_version());
}

TEST(Controller, InstanceLifecycle) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  controller.create_instance("i1");
  EXPECT_THROW(controller.create_instance("i1"), std::invalid_argument);
  EXPECT_NE(controller.instance("i1"), nullptr);
  EXPECT_EQ(controller.instance("ghost"), nullptr);
  EXPECT_EQ(controller.instance_names(),
            (std::vector<std::string>{"i1"}));
  EXPECT_TRUE(controller.remove_instance("i1"));
  EXPECT_FALSE(controller.remove_instance("i1"));
}

TEST(Controller, PlacementLeastLoaded) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  const dpi::ChainId c1 = controller.register_policy_chain({1});
  controller.handle_message(register_msg(2, "b"));
  const dpi::ChainId c2 = controller.register_policy_chain({2});
  const dpi::ChainId c3 = controller.register_policy_chain({1, 2});
  controller.create_instance("i1");
  controller.create_instance("i2");

  const std::string first = controller.auto_assign_chain(c1);
  const std::string second = controller.auto_assign_chain(c2);
  EXPECT_NE(first, second);  // least-loaded spreads chains
  controller.auto_assign_chain(c3);
  EXPECT_EQ(controller.assignments().size(), 3u);
  EXPECT_TRUE(controller.instance_for_chain(c1).has_value());
  EXPECT_FALSE(controller.instance_for_chain(999).has_value());

  EXPECT_THROW(controller.assign_chain(999, "i1"), std::invalid_argument);
  EXPECT_THROW(controller.assign_chain(c1, "ghost"), std::invalid_argument);
}

TEST(Controller, RemoveInstanceUnassignsChains) {
  DpiController controller;
  controller.handle_message(register_msg(1, "a"));
  const dpi::ChainId chain = controller.register_policy_chain({1});
  controller.create_instance("i1");
  controller.assign_chain(chain, "i1");
  controller.remove_instance("i1");
  EXPECT_FALSE(controller.instance_for_chain(chain).has_value());
}

// --- MCA² -----------------------------------------------------------------------

class Mca2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    StressConfig stress;
    stress.hits_per_byte_threshold = 0.02;
    stress.min_window_bytes = 1024;
    stress.smoothing_windows = 2;
    controller_ = std::make_unique<DpiController>(stress);
    controller_->handle_message(register_msg(1, "ids"));
    controller_->handle_message(add_exact_msg(1, 0, "attacksig"));
    controller_->handle_message(add_exact_msg(1, 1, "benignsig"));
    chain_ = controller_->register_policy_chain({1});
    regular_ = controller_->create_instance("regular");
    InstanceConfig dedicated;
    dedicated.dedicated = true;
    dedicated_ = controller_->create_instance("dedicated", dedicated);
    controller_->assign_chain(chain_, "regular");
  }

  void pump_traffic(DpiInstance& inst, const std::string& payload, int n) {
    for (int i = 0; i < n; ++i) {
      inst.scan(chain_, flow(static_cast<std::uint16_t>(i % 8)), view(payload));
    }
  }

  std::unique_ptr<DpiController> controller_;
  std::shared_ptr<DpiInstance> regular_;
  std::shared_ptr<DpiInstance> dedicated_;
  dpi::ChainId chain_ = 0;
};

TEST_F(Mca2Test, BenignTrafficTriggersNothing) {
  pump_traffic(*regular_, "plenty of ordinary web content with no signatures "
                          "whatsoever, just text flowing through the wire....",
               50);
  controller_->collect_telemetry();
  const MitigationPlan plan = controller_->evaluate_mitigation();
  EXPECT_TRUE(plan.stressed_instances.empty());
  EXPECT_TRUE(plan.empty());
}

TEST_F(Mca2Test, AttackTrafficTriggersMigrationToDedicated) {
  // Adversarial payload: back-to-back signatures -> dense accepting hits.
  std::string attack;
  for (int i = 0; i < 20; ++i) attack += "attacksig";
  pump_traffic(*regular_, attack, 50);
  controller_->collect_telemetry();
  EXPECT_TRUE(controller_->stress_monitor().is_stressed("regular"));

  const MitigationPlan plan = controller_->evaluate_mitigation();
  ASSERT_EQ(plan.migrations.size(), 1u);
  EXPECT_EQ(plan.migrations[0].chain, chain_);
  EXPECT_EQ(plan.migrations[0].from_instance, "regular");
  EXPECT_EQ(plan.migrations[0].to_instance, "dedicated");

  EXPECT_EQ(controller_->apply_mitigation(plan), 1u);
  EXPECT_EQ(controller_->instance_for_chain(chain_), "dedicated");
  // Applying the same plan twice is a no-op.
  EXPECT_EQ(controller_->apply_mitigation(plan), 0u);
}

TEST_F(Mca2Test, NoDedicatedInstanceMeansEmptyPlan) {
  controller_->remove_instance("dedicated");
  std::string attack;
  for (int i = 0; i < 20; ++i) attack += "attacksig";
  pump_traffic(*regular_, attack, 50);
  controller_->collect_telemetry();
  const MitigationPlan plan = controller_->evaluate_mitigation();
  EXPECT_FALSE(plan.stressed_instances.empty());
  EXPECT_TRUE(plan.empty());
}

TEST_F(Mca2Test, FlowMigrationBetweenInstances) {
  // Make the chain stateful so there is flow state to move.
  controller_->handle_message(json::parse(
      R"({"type":"unregister","middlebox_id":1})"));
  controller_->handle_message(json::parse(
      R"({"type":"register","middlebox_id":1,"name":"ids","stateful":true})"));
  controller_->handle_message(add_exact_msg(1, 0, "attacksig"));
  const dpi::ChainId chain = controller_->register_policy_chain({1});

  regular_->scan(chain, flow(3), view("some bytes"));
  EXPECT_EQ(regular_->active_flows(), 1u);
  EXPECT_TRUE(controller_->migrate_flow(flow(3), "regular", "dedicated"));
  EXPECT_EQ(regular_->active_flows(), 0u);
  EXPECT_EQ(dedicated_->active_flows(), 1u);
  // Unknown flow / instance combinations fail cleanly.
  EXPECT_FALSE(controller_->migrate_flow(flow(9), "regular", "dedicated"));
  EXPECT_FALSE(controller_->migrate_flow(flow(3), "ghost", "dedicated"));
}

TEST(StressMonitor, SmoothingAndThresholds) {
  StressConfig config;
  config.hits_per_byte_threshold = 0.1;
  config.min_window_bytes = 100;
  config.smoothing_windows = 2;
  StressMonitor monitor(config);

  InstanceTelemetry quiet;
  quiet.bytes = 1000;
  quiet.raw_hits = 10;  // 0.01
  monitor.report("a", quiet);
  EXPECT_FALSE(monitor.is_stressed("a"));
  EXPECT_DOUBLE_EQ(monitor.smoothed_signal("a"), 0.01);

  InstanceTelemetry loud;
  loud.bytes = 1000;
  loud.raw_hits = 500;  // 0.5
  monitor.report("a", loud);
  // Average over the 2-window history: (10+500)/2000 = 0.255.
  EXPECT_TRUE(monitor.is_stressed("a"));
  monitor.report("a", loud);  // quiet window rotated out
  EXPECT_DOUBLE_EQ(monitor.smoothed_signal("a"), 0.5);

  // Below min_window_bytes the signal is suppressed.
  StressMonitor small(config);
  InstanceTelemetry tiny;
  tiny.bytes = 50;
  tiny.raw_hits = 50;
  small.report("b", tiny);
  EXPECT_FALSE(small.is_stressed("b"));

  monitor.forget("a");
  EXPECT_FALSE(monitor.is_stressed("a"));
  EXPECT_TRUE(monitor.stressed_instances().empty());
}

}  // namespace
}  // namespace dpisvc::service
