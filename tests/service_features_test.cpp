// Tests for the extended service features: decompress-once scanning (§1),
// result-only mode for read-only chains (§4.2 option 3), and deployment
// groups (§4.3).
#include <gtest/gtest.h>

#include "compress/deflate.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/controller.hpp"
#include "service/instance_node.hpp"

namespace dpisvc::service {
namespace {

std::shared_ptr<const dpi::Engine> simple_engine(bool read_only) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile mbox;
  mbox.id = 1;
  mbox.name = "ids";
  mbox.read_only = read_only;
  spec.middleboxes = {mbox};
  spec.exact_patterns = {dpi::ExactPatternSpec{"hidden-attack", 1, 0}};
  spec.chains[5] = {1};
  return dpi::Engine::compile(spec);
}

net::Packet tagged(Bytes payload, std::uint32_t chain = 5) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = 1;
  p.tuple.dst_port = 80;
  p.payload = std::move(payload);
  p.push_tag(net::TagKind::kPolicyChain, chain);
  return p;
}

// --- decompress-once ----------------------------------------------------------

TEST(Decompression, GzipPayloadScannedInflated) {
  InstanceConfig config;
  config.decompress_payloads = true;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(false), 1);

  const Bytes body = to_bytes("<html>a hidden-attack in compressed text</html>");
  ProcessOutput out = inst.process(tagged(compress::gzip_compress(body)));
  EXPECT_TRUE(out.had_matches);
  EXPECT_EQ(inst.telemetry().decompressed_packets, 1u);
  EXPECT_EQ(inst.telemetry().decompressed_bytes, body.size());
}

TEST(Decompression, ZlibPayloadScannedInflated) {
  InstanceConfig config;
  config.decompress_payloads = true;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(false), 1);
  const Bytes body = to_bytes("zlib wrapped hidden-attack content");
  ProcessOutput out = inst.process(tagged(compress::zlib_compress(body)));
  EXPECT_TRUE(out.had_matches);
}

TEST(Decompression, DisabledByDefaultScansRawBytes) {
  DpiInstance inst("i1");  // decompression off
  inst.load_engine(simple_engine(false), 1);
  const Bytes body = to_bytes("a hidden-attack inside");
  ProcessOutput out = inst.process(tagged(compress::gzip_compress(body)));
  // The compressed bytes do not contain the pattern.
  EXPECT_FALSE(out.had_matches);
  EXPECT_EQ(inst.telemetry().decompressed_packets, 0u);
}

TEST(Decompression, CorruptGzipFallsBackToRawScan) {
  InstanceConfig config;
  config.decompress_payloads = true;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(false), 1);
  // Gzip magic followed by garbage, with the pattern visible in raw bytes.
  Bytes payload = {0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF};
  const Bytes text = to_bytes(" raw hidden-attack bytes ");
  payload.insert(payload.end(), text.begin(), text.end());
  ProcessOutput out = inst.process(tagged(std::move(payload)));
  EXPECT_TRUE(out.had_matches);  // matched on the raw form
  EXPECT_EQ(inst.telemetry().decompressed_packets, 0u);
}

TEST(Decompression, BombProtectionBoundsOutput) {
  InstanceConfig config;
  config.decompress_payloads = true;
  config.max_decompressed = 512;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(false), 1);
  Bytes huge(100000, 'x');
  ProcessOutput out = inst.process(tagged(compress::gzip_compress(huge)));
  // Inflation aborts at the bound and the raw (no-match) bytes are scanned.
  EXPECT_FALSE(out.had_matches);
  EXPECT_EQ(inst.telemetry().decompressed_packets, 0u);
}

TEST(Decompression, PlainPayloadUnaffected) {
  InstanceConfig config;
  config.decompress_payloads = true;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(false), 1);
  ProcessOutput out = inst.process(tagged(to_bytes("plain hidden-attack")));
  EXPECT_TRUE(out.had_matches);
  EXPECT_EQ(inst.telemetry().decompressed_packets, 0u);
}

// --- result-only mode -----------------------------------------------------------

TEST(ResultOnly, MatchlessDataBypassesMiddleboxPath) {
  InstanceConfig config;
  config.result_mode = ResultMode::kResultOnly;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(/*read_only=*/true), 1);
  ProcessOutput out = inst.process(tagged(to_bytes("clean content")));
  EXPECT_FALSE(out.result.has_value());
  // Chain tag popped: the data packet heads straight to the egress.
  EXPECT_FALSE(out.data.find_tag(net::TagKind::kPolicyChain).has_value());
}

TEST(ResultOnly, MatchedTrafficSendsResultAlone) {
  InstanceConfig config;
  config.result_mode = ResultMode::kResultOnly;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(/*read_only=*/true), 1);
  ProcessOutput out = inst.process(tagged(to_bytes("a hidden-attack!")));
  EXPECT_TRUE(out.had_matches);
  EXPECT_FALSE(out.data.find_tag(net::TagKind::kPolicyChain).has_value());
  ASSERT_TRUE(out.result.has_value());
  // The result packet carries the chain tag and traverses the middleboxes.
  EXPECT_EQ(out.result->find_tag(net::TagKind::kPolicyChain), 5u);
}

TEST(ResultOnly, FallsBackForNonReadOnlyChains) {
  InstanceConfig config;
  config.result_mode = ResultMode::kResultOnly;
  DpiInstance inst("i1", config);
  inst.load_engine(simple_engine(/*read_only=*/false), 1);
  ProcessOutput out = inst.process(tagged(to_bytes("a hidden-attack!")));
  // Non-read-only middlebox must still see the data packet: tag retained,
  // dedicated result packet trails it.
  EXPECT_EQ(out.data.find_tag(net::TagKind::kPolicyChain), 5u);
  ASSERT_TRUE(out.result.has_value());
}

// --- deployment groups ------------------------------------------------------------

json::Value register_msg(int id, const char* name) {
  return json::parse(R"({"type":"register","middlebox_id":)" +
                     std::to_string(id) + R"(,"name":")" + name + R"("})");
}

json::Value add_exact_msg(int id, int rule, const std::string& text) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.exact.push_back(ExactPatternMsg{static_cast<dpi::PatternId>(rule), text});
  return encode(req);
}

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

class GroupsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    controller_.handle_message(register_msg(1, "http-ids"));
    controller_.handle_message(register_msg(2, "ftp-ids"));
    controller_.handle_message(add_exact_msg(1, 0, "http-attack"));
    controller_.handle_message(add_exact_msg(2, 0, "ftp-attack"));
    http_chain_ = controller_.register_policy_chain({1});
    ftp_chain_ = controller_.register_policy_chain({2});
  }

  DpiController controller_;
  dpi::ChainId http_chain_ = 0;
  dpi::ChainId ftp_chain_ = 0;
};

TEST_F(GroupsTest, GroupInstanceServesOnlyItsChains) {
  controller_.define_group("http", {http_chain_});
  InstanceConfig config;
  config.group = "http";
  auto inst = controller_.create_instance("http-1", config);
  ASSERT_TRUE(inst->has_engine());
  EXPECT_TRUE(inst->engine()->chain_known(http_chain_));
  EXPECT_FALSE(inst->engine()->chain_known(ftp_chain_));
  // Only the HTTP patterns were compiled in.
  EXPECT_EQ(inst->engine()->num_exact_patterns(), 1u);
  const auto result = inst->scan(http_chain_, net::FiveTuple{},
                                 view("an http-attack"));
  EXPECT_TRUE(result.has_matches());
}

TEST_F(GroupsTest, GroupEngineIsSmallerThanFullEngine) {
  controller_.define_group("http", {http_chain_});
  InstanceConfig grouped;
  grouped.group = "http";
  auto http_inst = controller_.create_instance("http-1", grouped);
  auto full_inst = controller_.create_instance("full-1");
  EXPECT_LT(http_inst->engine()->memory_bytes(),
            full_inst->engine()->memory_bytes());
}

TEST_F(GroupsTest, GroupEnginesTrackPatternUpdates) {
  controller_.define_group("http", {http_chain_});
  InstanceConfig config;
  config.group = "http";
  auto inst = controller_.create_instance("http-1", config);
  controller_.handle_message(add_exact_msg(1, 1, "new-http-attack"));
  const auto result = inst->scan(http_chain_, net::FiveTuple{},
                                 view("a new-http-attack!"));
  EXPECT_TRUE(result.has_matches());
  // FTP pattern updates do not bloat the group engine.
  controller_.handle_message(add_exact_msg(2, 1, "new-ftp-attack"));
  EXPECT_EQ(inst->engine()->num_exact_patterns(), 2u);
}

TEST_F(GroupsTest, RedefiningGroupRepushesEngines) {
  controller_.define_group("g", {http_chain_});
  InstanceConfig config;
  config.group = "g";
  auto inst = controller_.create_instance("g-1", config);
  EXPECT_FALSE(inst->engine()->chain_known(ftp_chain_));
  controller_.define_group("g", {http_chain_, ftp_chain_});
  EXPECT_TRUE(inst->engine()->chain_known(ftp_chain_));
  EXPECT_EQ(inst->engine()->num_exact_patterns(), 2u);
}

TEST_F(GroupsTest, Validation) {
  EXPECT_THROW(controller_.define_group("", {http_chain_}),
               std::invalid_argument);
  EXPECT_THROW(controller_.define_group("g", {999}), std::invalid_argument);
  InstanceConfig config;
  config.group = "undefined";
  EXPECT_THROW(controller_.create_instance("x", config),
               std::invalid_argument);
}

// --- instance-level TCP reassembly (§7) -------------------------------------------

std::shared_ptr<const dpi::Engine> stateful_ids_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile mbox;
  mbox.id = 1;
  mbox.name = "ids";
  mbox.stateful = true;
  spec.middleboxes = {mbox};
  spec.exact_patterns = {dpi::ExactPatternSpec{"split-across-segments", 1, 0}};
  spec.chains[5] = {1};
  return dpi::Engine::compile(spec);
}

net::Packet tcp_segment(std::uint32_t seq, std::string_view data) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = 4242;
  p.tuple.dst_port = 80;
  p.tuple.proto = net::IpProto::kTcp;
  p.tcp_seq = seq;
  p.payload = to_bytes(data);
  p.push_tag(net::TagKind::kPolicyChain, 5);
  return p;
}

TEST(InstanceReassembly, OutOfOrderSegmentsStillMatch) {
  InstanceConfig config;
  config.reassemble_tcp = true;
  DpiInstance inst("i1", config);
  inst.load_engine(stateful_ids_engine(), 1);

  const std::string stream = "xx split-across-segments yy";
  // Anchor segment first, then the tail, then the gap-filling middle.
  auto r1 = inst.process(tcp_segment(0, stream.substr(0, 6)));
  EXPECT_FALSE(r1.had_matches);
  auto r2 = inst.process(
      tcp_segment(18, stream.substr(18)));  // out of order: held
  EXPECT_FALSE(r2.had_matches);
  EXPECT_EQ(inst.telemetry().reassembly_held, 1u);
  auto r3 = inst.process(tcp_segment(6, stream.substr(6, 12)));  // fills gap
  EXPECT_TRUE(r3.had_matches);
}

TEST(InstanceReassembly, WithoutReassemblyOutOfOrderEvades) {
  DpiInstance inst("i1");  // reassembly off
  inst.load_engine(stateful_ids_engine(), 1);
  const std::string stream = "xx split-across-segments yy";
  bool matched = false;
  matched |= inst.process(tcp_segment(0, stream.substr(0, 6))).had_matches;
  matched |= inst.process(tcp_segment(18, stream.substr(18))).had_matches;
  matched |=
      inst.process(tcp_segment(6, stream.substr(6, 12))).had_matches;
  EXPECT_FALSE(matched);  // the stateful scan saw bytes out of order
}

TEST(InstanceReassembly, InOrderTrafficUnaffected) {
  InstanceConfig config;
  config.reassemble_tcp = true;
  DpiInstance inst("i1", config);
  inst.load_engine(stateful_ids_engine(), 1);
  auto r1 = inst.process(tcp_segment(0, "xx split-across-"));
  auto r2 = inst.process(tcp_segment(16, "segments yy"));
  EXPECT_FALSE(r1.had_matches);
  EXPECT_TRUE(r2.had_matches);
  EXPECT_EQ(inst.telemetry().reassembly_held, 0u);
}

// --- result-only end to end on the fabric ---------------------------------------

TEST(ResultOnlyFabric, DataBypassesIdsWhileResultsReachIt) {
  DpiController controller;
  mbox::Ids ids(1, /*stateful=*/false);  // read-only by construction
  mbox::RuleSpec rule;
  rule.id = 0;
  rule.exact = "hidden-attack";
  rule.verdict = mbox::Verdict::kAlert;
  ids.add_rule(rule);
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  InstanceConfig config;
  config.result_mode = ResultMode::kResultOnly;
  auto instance = controller.create_instance("dpi-1", config);

  netsim::Fabric fabric;
  netsim::Switch& sw = fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  netsim::Host& dst = fabric.add_node<netsim::Host>("dst");
  netsim::Host& monitor = fabric.add_node<netsim::Host>("monitor");
  fabric.add_node<InstanceNode>("dpi-1", instance);
  for (const char* n : {"src", "dst", "monitor", "dpi-1"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  // Steering: tagged traffic from src -> DPI; tagged packets from the DPI
  // (only results keep the tag) -> the monitoring host; untagged packets
  // from the DPI -> production egress.
  netsim::SdnController sdn(fabric);
  {
    netsim::FlowRule ingress;
    ingress.priority = 10;
    ingress.match.in_node = "src";
    ingress.action.push_chain_tag = chain;
    ingress.action.forward_to = "dpi-1";
    sdn.install("s1", ingress);
    netsim::FlowRule results;
    results.priority = 20;
    results.match.in_node = "dpi-1";
    results.match.chain_tag = chain;
    results.action.forward_to = "monitor";
    results.action.pop_chain_tag = true;
    sdn.install("s1", results);
    netsim::FlowRule egress;
    egress.priority = 5;
    egress.match.in_node = "dpi-1";
    egress.action.forward_to = "dst";
    sdn.install("s1", egress);
  }

  net::Packet clean;
  clean.tuple.dst_port = 80;
  clean.payload = to_bytes("nothing to see");
  src.send(net::Packet(clean));
  net::Packet evil = clean;
  evil.ip_id = 2;
  evil.payload = to_bytes("a hidden-attack appears");
  src.send(std::move(evil));
  fabric.run();

  // Production egress got both data packets; the monitor got one result.
  EXPECT_EQ(dst.received().size(), 2u);
  ASSERT_EQ(monitor.received().size(), 1u);
  EXPECT_EQ(monitor.received()[0].service_header->service_path_id,
            kResultServicePathId);
  EXPECT_GT(sw.forwarded(), 0u);
}

}  // namespace
}  // namespace dpisvc::service
