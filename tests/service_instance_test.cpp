// Tests for the DPI service instance: packet processing, the three result-
// passing behaviours of §4.2/§6.1, telemetry, and flow migration.
#include <gtest/gtest.h>

#include "netsim/host.hpp"
#include "service/instance.hpp"
#include "service/instance_node.hpp"

namespace dpisvc::service {
namespace {

std::shared_ptr<const dpi::Engine> test_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.read_only = true;
  dpi::MiddleboxProfile av;
  av.id = 2;
  av.name = "av";
  spec.middleboxes = {ids, av};
  spec.exact_patterns = {
      dpi::ExactPatternSpec{"attack", 1, 100},
      dpi::ExactPatternSpec{"virus!", 2, 200},
  };
  spec.chains[5] = {1, 2};
  return dpi::Engine::compile(spec);
}

std::shared_ptr<const dpi::Engine> stateful_engine() {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = true;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{"splitpattern", 1, 7}};
  spec.chains[5] = {1};
  return dpi::Engine::compile(spec);
}

net::Packet tagged_packet(std::string_view payload, std::uint32_t chain = 5,
                          std::uint16_t ip_id = 1) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = 1000;
  p.tuple.dst_port = 80;
  p.ip_id = ip_id;
  p.payload = to_bytes(payload);
  p.push_tag(net::TagKind::kPolicyChain, chain);
  return p;
}

TEST(Instance, ScanRequiresEngine) {
  DpiInstance inst("i1");
  EXPECT_THROW(inst.scan(5, net::FiveTuple{}, {}), std::logic_error);
  EXPECT_FALSE(inst.has_engine());
}

TEST(Instance, CleanPacketForwardedUnmodified) {
  DpiInstance inst("i1");
  inst.load_engine(test_engine(), 1);
  net::Packet original = tagged_packet("nothing interesting here");
  const Bytes wire_before = original.to_wire();
  ProcessOutput out = inst.process(std::move(original));
  // §4.2: "a packet with no matches is always forwarded as is".
  EXPECT_FALSE(out.had_matches);
  EXPECT_FALSE(out.result.has_value());
  EXPECT_FALSE(out.data.has_match_mark());
  EXPECT_EQ(out.data.to_wire(), wire_before);
}

TEST(Instance, UntaggedPacketPassesThrough) {
  DpiInstance inst("i1");
  inst.load_engine(test_engine(), 1);
  net::Packet p;
  p.payload = to_bytes("attack");  // would match, but no chain tag
  ProcessOutput out = inst.process(std::move(p));
  EXPECT_FALSE(out.had_matches);
  EXPECT_EQ(inst.telemetry().pass_through, 1u);
  EXPECT_EQ(inst.telemetry().packets, 0u);
}

TEST(Instance, UnknownChainTagPassesThrough) {
  DpiInstance inst("i1");
  inst.load_engine(test_engine(), 1);
  ProcessOutput out = inst.process(tagged_packet("attack", /*chain=*/99));
  EXPECT_FALSE(out.had_matches);
  EXPECT_EQ(inst.telemetry().pass_through, 1u);
}

TEST(Instance, DedicatedResultPacketMode) {
  DpiInstance inst("i1");  // default mode: dedicated result packet
  inst.load_engine(test_engine(), 1);
  ProcessOutput out = inst.process(tagged_packet("an attack and a virus!"));
  EXPECT_TRUE(out.had_matches);
  EXPECT_TRUE(out.data.has_match_mark());
  EXPECT_FALSE(out.data.service_header.has_value());  // data stays clean
  ASSERT_TRUE(out.result.has_value());
  const net::Packet& result = *out.result;
  EXPECT_EQ(result.service_header->service_path_id, kResultServicePathId);
  // Result packet follows the same steering path: same chain tag and flow.
  EXPECT_EQ(result.find_tag(net::TagKind::kPolicyChain), 5u);
  EXPECT_EQ(result.tuple, out.data.tuple);
  EXPECT_EQ(packet_ref_of(result), packet_ref_of(out.data));

  const net::MatchReport report =
      net::decode_report(result.service_header->metadata);
  EXPECT_EQ(report.policy_chain_id, 5);
  ASSERT_EQ(report.sections.size(), 2u);
  EXPECT_EQ(report.sections[0].middlebox_id, 1);
  EXPECT_EQ(report.sections[0].entries[0].pattern_id, 100);
  EXPECT_EQ(report.sections[1].middlebox_id, 2);
  EXPECT_EQ(report.sections[1].entries[0].pattern_id, 200);
}

TEST(Instance, ServiceHeaderMode) {
  InstanceConfig config;
  config.result_mode = ResultMode::kServiceHeader;
  DpiInstance inst("i1", config);
  inst.load_engine(test_engine(), 1);
  ProcessOutput out = inst.process(tagged_packet("attack"));
  EXPECT_TRUE(out.had_matches);
  EXPECT_FALSE(out.result.has_value());
  ASSERT_TRUE(out.data.service_header.has_value());
  EXPECT_TRUE(out.data.has_match_mark());
  const net::MatchReport report =
      net::decode_report(out.data.service_header->metadata);
  EXPECT_EQ(report.sections.size(), 1u);
  // The annotated packet still survives the wire.
  const net::Packet rewired = net::Packet::from_wire(out.data.to_wire());
  EXPECT_EQ(rewired.service_header, out.data.service_header);
}

TEST(Instance, TelemetryAccumulates) {
  DpiInstance inst("i1");
  inst.load_engine(test_engine(), 1);
  inst.process(tagged_packet("clean payload here"));
  inst.process(tagged_packet("attack attack attack"));
  const InstanceTelemetry& t = inst.telemetry();
  EXPECT_EQ(t.packets, 2u);
  EXPECT_EQ(t.match_packets, 1u);
  EXPECT_GT(t.bytes, 30u);
  EXPECT_GE(t.raw_hits, 3u);
  EXPECT_GT(t.result_bytes, 0u);
  EXPECT_GT(t.hits_per_byte(), 0.0);
  ASSERT_EQ(inst.chain_telemetry().count(5), 1u);
  EXPECT_EQ(inst.chain_telemetry().at(5).packets, 2u);
  // Snapshot-and-reset: the returned snapshot carries the pre-reset counts.
  const InstanceTelemetry snapshot = inst.reset_telemetry();
  EXPECT_EQ(snapshot.packets, 2u);
  EXPECT_EQ(snapshot.match_packets, 1u);
  EXPECT_EQ(snapshot.bytes, t.bytes);
  EXPECT_EQ(inst.telemetry().packets, 0u);
  EXPECT_TRUE(inst.chain_telemetry().empty());
}

TEST(Instance, StatefulFlowsTrackedAndMatchAcrossPackets) {
  DpiInstance inst("i1");
  inst.load_engine(stateful_engine(), 1);
  const net::Packet first = tagged_packet("xxsplitpa", 5, 1);
  inst.process(net::Packet(first));
  EXPECT_EQ(inst.active_flows(), 1u);
  ProcessOutput out = inst.process(tagged_packet("tternzz", 5, 2));
  EXPECT_TRUE(out.had_matches);
  const net::MatchReport report =
      net::decode_report(out.result->service_header->metadata);
  EXPECT_EQ(report.sections[0].entries[0].position, 14u);  // flow offset
}

TEST(Instance, FlowMigrationPreservesScanState) {
  DpiInstance source("src");
  DpiInstance target("dst");
  source.load_engine(stateful_engine(), 1);
  target.load_engine(stateful_engine(), 1);

  const net::Packet first = tagged_packet("xxsplitpa", 5, 1);
  source.process(net::Packet(first));
  // Migrate the flow mid-pattern (§4.3).
  const dpi::FlowCursor cursor = source.export_flow(first.tuple);
  ASSERT_TRUE(cursor.valid);
  EXPECT_EQ(source.active_flows(), 0u);
  target.import_flow(first.tuple, cursor);

  ProcessOutput out = target.process(tagged_packet("tternzz", 5, 2));
  EXPECT_TRUE(out.had_matches);  // the straddling match still fires
}

TEST(Instance, LruEvictionOfLiveCursorIsObservable) {
  // A flow-creation flood on an undersized table silently resets stateful
  // cursors: the straddling match below is *missed*, and the only trace is
  // the flow_evictions telemetry counter this test pins down.
  InstanceConfig config;
  config.max_flows = 1;
  DpiInstance inst("i1", config);
  inst.load_engine(stateful_engine(), 1);

  net::FiveTuple flow_a{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2),
                        1000, 80, net::IpProto::kTcp};
  net::FiveTuple flow_b{net::Ipv4Addr(10, 0, 0, 3), net::Ipv4Addr(10, 0, 0, 4),
                        2000, 80, net::IpProto::kTcp};

  // Flow A scans the first half of "splitpattern"...
  const auto r1 = inst.scan(5, flow_a, to_bytes("xxsplitpa"));
  EXPECT_FALSE(r1.has_matches());
  // ...then flow B's insert evicts A's live cursor (capacity 1).
  (void)inst.scan(5, flow_b, to_bytes("yy"));
  EXPECT_EQ(inst.telemetry().flow_evictions, 1u);
  // Flow A's second half resumes from the DFA root: the straddling match
  // is lost. (With enough capacity it fires — see
  // StatefulFlowsTrackedAndMatchAcrossPackets.)
  const auto r2 = inst.scan(5, flow_a, to_bytes("tternzz"));
  EXPECT_FALSE(r2.has_matches());
  EXPECT_GE(inst.telemetry().flow_evictions, 1u);
}

TEST(Instance, BulkFlowExportImportMigratesAllState) {
  DpiInstance source("src");
  DpiInstance target("dst");
  source.load_engine(stateful_engine(), 1);
  target.load_engine(stateful_engine(), 1);

  const net::Packet first = tagged_packet("xxsplitpa", 5, 1);
  source.process(net::Packet(first));
  auto exported = source.export_all_flows();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(source.active_flows(), 0u);
  target.import_flows(exported);
  EXPECT_EQ(target.active_flows(), 1u);

  ProcessOutput out = target.process(tagged_packet("tternzz", 5, 2));
  EXPECT_TRUE(out.had_matches);  // the straddling match still fires
}

TEST(Instance, LoadEngineClearsFlows) {
  DpiInstance inst("i1");
  inst.load_engine(stateful_engine(), 1);
  inst.process(tagged_packet("xxsplitpa"));
  EXPECT_EQ(inst.active_flows(), 1u);
  inst.load_engine(stateful_engine(), 2);
  EXPECT_EQ(inst.active_flows(), 0u);
  EXPECT_EQ(inst.engine_version(), 2u);
}

TEST(InstanceNode, EmitsDataThenResultTowardSwitch) {
  netsim::Fabric fabric;
  auto inst = std::make_shared<DpiInstance>("dpi1");
  inst->load_engine(test_engine(), 1);
  fabric.add_node<InstanceNode>("dpi1", inst);
  netsim::Host& sink = fabric.add_node<netsim::Host>("sw");  // stands for the switch
  fabric.connect("dpi1", "sw");

  fabric.send("sw", "dpi1", tagged_packet("attack here"));
  fabric.run();
  ASSERT_EQ(sink.received().size(), 2u);
  EXPECT_TRUE(sink.received()[0].has_match_mark());
  EXPECT_FALSE(sink.received()[0].service_header.has_value());
  ASSERT_TRUE(sink.received()[1].service_header.has_value());
  EXPECT_EQ(sink.received()[1].service_header->service_path_id,
            kResultServicePathId);
}

}  // namespace
}  // namespace dpisvc::service
