// Tests for the JSON control-plane protocol (§4.1).
#include <gtest/gtest.h>

#include "service/messages.hpp"

namespace dpisvc::service {
namespace {

TEST(Messages, RegisterRoundTrip) {
  RegisterRequest request;
  request.profile.id = 7;
  request.profile.name = "ids";
  request.profile.stateful = true;
  request.profile.read_only = true;
  request.profile.stop_offset = 2048;
  const json::Value wire = encode(request);
  // Survive an actual serialize/parse cycle, as over a real channel.
  const json::Value reparsed = json::parse(json::dump(wire));
  const RegisterRequest decoded = decode_register(reparsed);
  EXPECT_EQ(decoded.profile.id, 7);
  EXPECT_EQ(decoded.profile.name, "ids");
  EXPECT_TRUE(decoded.profile.stateful);
  EXPECT_TRUE(decoded.profile.read_only);
  EXPECT_EQ(decoded.profile.stop_offset, 2048u);
  EXPECT_FALSE(decoded.inherit_from.has_value());
}

TEST(Messages, RegisterNoStopConditionIsNull) {
  RegisterRequest request;
  request.profile.id = 1;
  request.profile.name = "x";
  const json::Value wire = encode(request);
  EXPECT_TRUE(wire.at("stop_offset").is_null());
  EXPECT_EQ(decode_register(wire).profile.stop_offset, dpi::kNoStopCondition);
}

TEST(Messages, RegisterWithInheritance) {
  RegisterRequest request;
  request.profile.id = 2;
  request.profile.name = "ids-clone";
  request.inherit_from = 1;
  const RegisterRequest decoded = decode_register(encode(request));
  ASSERT_TRUE(decoded.inherit_from.has_value());
  EXPECT_EQ(*decoded.inherit_from, 1);
}

TEST(Messages, AddPatternsRoundTripWithBinaryBytes) {
  AddPatternsRequest request;
  request.middlebox = 3;
  request.exact.push_back(ExactPatternMsg{10, std::string("\x00\xFF\x90""abc", 6)});
  request.exact.push_back(ExactPatternMsg{11, "plain-text"});
  request.regex.push_back(RegexPatternMsg{12, R"(evil\d+)", true});
  const json::Value reparsed = json::parse(json::dump(encode(request)));
  const AddPatternsRequest decoded = decode_add_patterns(reparsed);
  EXPECT_EQ(decoded.middlebox, 3);
  ASSERT_EQ(decoded.exact.size(), 2u);
  EXPECT_EQ(decoded.exact[0].rule, 10);
  EXPECT_EQ(decoded.exact[0].bytes, std::string("\x00\xFF\x90""abc", 6));
  EXPECT_EQ(decoded.exact[1].bytes, "plain-text");
  ASSERT_EQ(decoded.regex.size(), 1u);
  EXPECT_EQ(decoded.regex[0].expression, R"(evil\d+)");
  EXPECT_TRUE(decoded.regex[0].case_insensitive);
}

TEST(Messages, RemovePatternsRoundTrip) {
  RemovePatternsRequest request;
  request.middlebox = 5;
  request.rules = {1, 2, 30000};
  const RemovePatternsRequest decoded =
      decode_remove_patterns(json::parse(json::dump(encode(request))));
  EXPECT_EQ(decoded.middlebox, 5);
  EXPECT_EQ(decoded.rules, (std::vector<dpi::PatternId>{1, 2, 30000}));
}

TEST(Messages, UnregisterRoundTrip) {
  UnregisterRequest request;
  request.middlebox = 9;
  EXPECT_EQ(decode_unregister(encode(request)).middlebox, 9);
}

TEST(Messages, Responses) {
  EXPECT_TRUE(response_ok(ok_response()));
  const json::Value err = error_response("boom");
  EXPECT_FALSE(response_ok(err));
  EXPECT_EQ(err.at("error").as_string(), "boom");
}

TEST(Messages, TypeDispatch) {
  RegisterRequest request;
  request.profile.id = 1;
  request.profile.name = "a";
  EXPECT_EQ(message_type(encode(request)), "register");
  EXPECT_THROW(decode_add_patterns(encode(request)), std::invalid_argument);
  EXPECT_THROW(decode_register(encode(UnregisterRequest{1})),
               std::invalid_argument);
}

TEST(Messages, RejectsOutOfRangeIds) {
  json::Value bad = json::parse(
      R"({"type":"register","middlebox_id":65,"name":"x"})");
  EXPECT_THROW(decode_register(bad), std::invalid_argument);
  bad = json::parse(R"({"type":"register","middlebox_id":0,"name":"x"})");
  EXPECT_THROW(decode_register(bad), std::invalid_argument);
  bad = json::parse(
      R"({"type":"remove_patterns","middlebox_id":1,"rules":[70000]})");
  EXPECT_THROW(decode_remove_patterns(bad), std::invalid_argument);
}

TEST(Messages, RejectsMissingFields) {
  EXPECT_THROW(decode_register(json::parse(R"({"type":"register"})")),
               json::TypeError);
  EXPECT_THROW(
      decode_add_patterns(json::parse(
          R"({"type":"add_patterns","middlebox_id":1,"exact":[{"rule":1}]})")),
      json::TypeError);
}

}  // namespace
}  // namespace dpisvc::service
