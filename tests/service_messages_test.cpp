// Tests for the JSON control-plane protocol (§4.1).
#include <gtest/gtest.h>

#include "service/messages.hpp"

namespace dpisvc::service {
namespace {

TEST(Messages, RegisterRoundTrip) {
  RegisterRequest request;
  request.profile.id = 7;
  request.profile.name = "ids";
  request.profile.stateful = true;
  request.profile.read_only = true;
  request.profile.stop_offset = 2048;
  const json::Value wire = encode(request);
  // Survive an actual serialize/parse cycle, as over a real channel.
  const json::Value reparsed = json::parse(json::dump(wire));
  const RegisterRequest decoded = decode_register(reparsed);
  EXPECT_EQ(decoded.profile.id, 7);
  EXPECT_EQ(decoded.profile.name, "ids");
  EXPECT_TRUE(decoded.profile.stateful);
  EXPECT_TRUE(decoded.profile.read_only);
  EXPECT_EQ(decoded.profile.stop_offset, 2048u);
  EXPECT_FALSE(decoded.inherit_from.has_value());
}

TEST(Messages, RegisterNoStopConditionIsNull) {
  RegisterRequest request;
  request.profile.id = 1;
  request.profile.name = "x";
  const json::Value wire = encode(request);
  EXPECT_TRUE(wire.at("stop_offset").is_null());
  EXPECT_EQ(decode_register(wire).profile.stop_offset, dpi::kNoStopCondition);
}

TEST(Messages, RegisterWithInheritance) {
  RegisterRequest request;
  request.profile.id = 2;
  request.profile.name = "ids-clone";
  request.inherit_from = 1;
  const RegisterRequest decoded = decode_register(encode(request));
  ASSERT_TRUE(decoded.inherit_from.has_value());
  EXPECT_EQ(*decoded.inherit_from, 1);
}

TEST(Messages, AddPatternsRoundTripWithBinaryBytes) {
  AddPatternsRequest request;
  request.middlebox = 3;
  request.exact.push_back(ExactPatternMsg{10, std::string("\x00\xFF\x90""abc", 6)});
  request.exact.push_back(ExactPatternMsg{11, "plain-text"});
  request.regex.push_back(RegexPatternMsg{12, R"(evil\d+)", true});
  const json::Value reparsed = json::parse(json::dump(encode(request)));
  const AddPatternsRequest decoded = decode_add_patterns(reparsed);
  EXPECT_EQ(decoded.middlebox, 3);
  ASSERT_EQ(decoded.exact.size(), 2u);
  EXPECT_EQ(decoded.exact[0].rule, 10);
  EXPECT_EQ(decoded.exact[0].bytes, std::string("\x00\xFF\x90""abc", 6));
  EXPECT_EQ(decoded.exact[1].bytes, "plain-text");
  ASSERT_EQ(decoded.regex.size(), 1u);
  EXPECT_EQ(decoded.regex[0].expression, R"(evil\d+)");
  EXPECT_TRUE(decoded.regex[0].case_insensitive);
}

TEST(Messages, RemovePatternsRoundTrip) {
  RemovePatternsRequest request;
  request.middlebox = 5;
  request.rules = {1, 2, 30000};
  const RemovePatternsRequest decoded =
      decode_remove_patterns(json::parse(json::dump(encode(request))));
  EXPECT_EQ(decoded.middlebox, 5);
  EXPECT_EQ(decoded.rules, (std::vector<dpi::PatternId>{1, 2, 30000}));
}

TEST(Messages, UnregisterRoundTrip) {
  UnregisterRequest request;
  request.middlebox = 9;
  EXPECT_EQ(decode_unregister(encode(request)).middlebox, 9);
}

TEST(Messages, Responses) {
  EXPECT_TRUE(response_ok(ok_response()));
  const json::Value err = error_response("boom");
  EXPECT_FALSE(response_ok(err));
  EXPECT_EQ(err.at("error").as_string(), "boom");
}

TEST(Messages, TypeDispatch) {
  RegisterRequest request;
  request.profile.id = 1;
  request.profile.name = "a";
  EXPECT_EQ(message_type(encode(request)), "register");
  EXPECT_THROW(decode_add_patterns(encode(request)), std::invalid_argument);
  EXPECT_THROW(decode_register(encode(UnregisterRequest{1})),
               std::invalid_argument);
}

TEST(Messages, RejectsOutOfRangeIds) {
  json::Value bad = json::parse(
      R"({"type":"register","middlebox_id":65,"name":"x"})");
  EXPECT_THROW(decode_register(bad), std::invalid_argument);
  bad = json::parse(R"({"type":"register","middlebox_id":0,"name":"x"})");
  EXPECT_THROW(decode_register(bad), std::invalid_argument);
  bad = json::parse(
      R"({"type":"remove_patterns","middlebox_id":1,"rules":[70000]})");
  EXPECT_THROW(decode_remove_patterns(bad), std::invalid_argument);
}

TEST(Messages, RejectsMissingFields) {
  EXPECT_THROW(decode_register(json::parse(R"({"type":"register"})")),
               json::TypeError);
  EXPECT_THROW(
      decode_add_patterns(json::parse(
          R"({"type":"add_patterns","middlebox_id":1,"exact":[{"rule":1}]})")),
      json::TypeError);
}


// --- telemetry messages (§4.3.1) ---------------------------------------------

TelemetryReport sample_report() {
  TelemetryReport report;
  report.instance = "dpi-0";
  report.engine_version = 3;
  report.packets = 1000;
  report.bytes = 123456;
  report.raw_hits = 77;
  report.match_packets = 42;
  report.flow_evictions = 5;
  report.active_flows = 64;
  report.busy_seconds = 1.5;
  report.scan_p50_ns = 2500;
  report.scan_p90_ns = 8000;
  report.scan_p99_ns = 20000;
  return report;
}

TEST(Messages, TelemetryReportRoundTrip) {
  TelemetryReport report = sample_report();
  json::Object metrics;
  metrics["counters"] = json::Value(json::Object{});
  report.metrics = json::Value(std::move(metrics));
  const json::Value reparsed = json::parse(json::dump(encode(report)));
  EXPECT_EQ(reparsed.at("type").as_string(), "telemetry_report");
  const TelemetryReport decoded = decode_telemetry_report(reparsed);
  EXPECT_EQ(decoded.instance, "dpi-0");
  EXPECT_EQ(decoded.engine_version, 3u);
  EXPECT_EQ(decoded.packets, 1000u);
  EXPECT_EQ(decoded.bytes, 123456u);
  EXPECT_EQ(decoded.raw_hits, 77u);
  EXPECT_EQ(decoded.match_packets, 42u);
  EXPECT_EQ(decoded.flow_evictions, 5u);
  EXPECT_EQ(decoded.active_flows, 64u);
  EXPECT_DOUBLE_EQ(decoded.busy_seconds, 1.5);
  EXPECT_DOUBLE_EQ(decoded.scan_p50_ns, 2500);
  EXPECT_DOUBLE_EQ(decoded.scan_p99_ns, 20000);
  EXPECT_TRUE(decoded.metrics.is_object());
  EXPECT_GT(decoded.hits_per_byte(), 0.0);
}

TEST(Messages, TelemetryReportOmitsNullMetrics) {
  const json::Value wire = encode(sample_report());
  EXPECT_FALSE(wire.as_object().contains("metrics"));
  const TelemetryReport decoded = decode_telemetry_report(wire);
  EXPECT_TRUE(decoded.metrics.is_null());
}

TEST(Messages, TelemetryQueryRoundTrip) {
  const TelemetryQuery all{};
  // Empty instance = all instances; the field is omitted on the wire.
  const json::Value wire_all = encode(all);
  EXPECT_EQ(wire_all.at("type").as_string(), "telemetry_query");
  EXPECT_FALSE(wire_all.as_object().contains("instance"));
  EXPECT_TRUE(decode_telemetry_query(wire_all).instance.empty());

  const TelemetryQuery one{"dpi-3"};
  EXPECT_EQ(decode_telemetry_query(json::parse(json::dump(encode(one))))
                .instance,
            "dpi-3");
}

TEST(Messages, TelemetryReportRejectsMalformed) {
  // Missing / empty instance name.
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","counters":{}})")),
               std::exception);
  EXPECT_THROW(
      decode_telemetry_report(json::parse(
          R"({"type":"telemetry_report","instance":"","counters":{}})")),
      std::exception);
  // Counters must be an object.
  EXPECT_THROW(
      decode_telemetry_report(json::parse(
          R"({"type":"telemetry_report","instance":"a","counters":[1]})")),
      std::exception);
  // Negative counts are invalid.
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","instance":"a",
                       "counters":{"packets":-1}})")),
               std::exception);
  // Non-numeric count.
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","instance":"a",
                       "counters":{"packets":"many"}})")),
               std::exception);
  // match_packets cannot exceed packets.
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","instance":"a",
                       "counters":{"packets":1,"match_packets":2}})")),
               std::exception);
  // latency_ns and metrics, when present, must be objects.
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","instance":"a",
                       "counters":{},"latency_ns":3})")),
               std::exception);
  EXPECT_THROW(decode_telemetry_report(json::parse(
                   R"({"type":"telemetry_report","instance":"a",
                       "counters":{},"metrics":"x"})")),
               std::exception);
}

TEST(Messages, TelemetryReportMinimalCountersDefaultToZero) {
  const TelemetryReport decoded = decode_telemetry_report(json::parse(
      R"({"type":"telemetry_report","instance":"a","counters":{}})"));
  EXPECT_EQ(decoded.packets, 0u);
  EXPECT_EQ(decoded.bytes, 0u);
  EXPECT_DOUBLE_EQ(decoded.busy_seconds, 0.0);
  EXPECT_DOUBLE_EQ(decoded.scan_p50_ns, 0.0);
}

}  // namespace
}  // namespace dpisvc::service
