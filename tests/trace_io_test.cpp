// Tests for the on-disk pattern-set and trace formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "workload/pattern_gen.hpp"
#include "workload/trace_io.hpp"

namespace dpisvc::workload {
namespace {

TEST(PatternIo, TextRoundTrip) {
  const std::vector<std::string> patterns = {
      "plain-ascii",
      std::string("\x00\xFF\x90""bin", 6),
      "unicode: é",
  };
  const std::string text = patterns_to_text(patterns);
  EXPECT_EQ(patterns_from_text(text), patterns);
}

TEST(PatternIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n"
      "\n"
      "616263\n"          // "abc"
      "# mid comment\r\n"
      "646566\r\n";       // "def" with CRLF
  EXPECT_EQ(patterns_from_text(text),
            (std::vector<std::string>{"abc", "def"}));
}

TEST(PatternIo, RejectsMalformedLines) {
  EXPECT_THROW(patterns_from_text("xyz\n"), std::invalid_argument);
  EXPECT_THROW(patterns_from_text("616\n"), std::invalid_argument);
  // Valid hex but empty after decode cannot happen (empty line skipped),
  // so nothing else to reject here.
  EXPECT_TRUE(patterns_from_text("").empty());
  EXPECT_TRUE(patterns_from_text("# only comments\n").empty());
}

TEST(PatternIo, GeneratedSetsSurviveRoundTrip) {
  const auto snort = generate_patterns(snort_like(200));
  EXPECT_EQ(patterns_from_text(patterns_to_text(snort)), snort);
  const auto clam = generate_patterns(clamav_like(200));
  EXPECT_EQ(patterns_from_text(patterns_to_text(clam)), clam);
}

TEST(TraceIo, BinaryRoundTrip) {
  TrafficConfig config;
  config.num_packets = 50;
  const Trace original = generate_http_trace(config);
  const Bytes blob = trace_to_bytes(original);
  const Trace restored = trace_from_bytes(blob);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].tuple, original[i].tuple);
    EXPECT_EQ(restored[i].payload, original[i].payload);
  }
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  EXPECT_TRUE(trace_from_bytes(trace_to_bytes({})).empty());
}

TEST(TraceIo, RejectsCorruption) {
  TrafficConfig config;
  config.num_packets = 3;
  const Bytes blob = trace_to_bytes(generate_http_trace(config));
  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(trace_from_bytes(bad_magic), std::invalid_argument);
  Bytes truncated(blob.begin(), blob.end() - 5);
  EXPECT_THROW(trace_from_bytes(truncated), std::invalid_argument);
  Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_THROW(trace_from_bytes(trailing), std::invalid_argument);
  EXPECT_THROW(trace_from_bytes(BytesView(blob.data(), 4)),
               std::out_of_range);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dpisvc_io_test").string();
  std::filesystem::create_directories(dir);
  const std::string pattern_path = dir + "/patterns.txt";
  const std::string trace_path = dir + "/trace.bin";

  const auto patterns = generate_patterns(snort_like(50));
  save_patterns(pattern_path, patterns);
  EXPECT_EQ(load_patterns(pattern_path), patterns);

  TrafficConfig config;
  config.num_packets = 20;
  const Trace trace = generate_http_trace(config);
  save_trace(trace_path, trace);
  const Trace restored = load_trace(trace_path);
  EXPECT_EQ(restored.size(), trace.size());
  EXPECT_EQ(total_payload_bytes(restored), total_payload_bytes(trace));

  std::filesystem::remove_all(dir);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_patterns("/nonexistent/path/p.txt"), std::runtime_error);
  EXPECT_THROW(load_trace("/nonexistent/path/t.bin"), std::runtime_error);
}

}  // namespace
}  // namespace dpisvc::workload
