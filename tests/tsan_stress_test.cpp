// Multi-threaded stress test for the service data/control-plane split,
// written to run under ThreadSanitizer (-DDPISVC_TSAN=ON).
//
// Thread model being validated (§2.2, §4.3): DpiInstance is the only object
// shared across threads — scanner threads hammer instances directly and
// through the netsim fabric while ONE control-plane thread drives the
// DpiController (pattern registration → engine recompile + hot push, MCA²
// telemetry collection, heartbeat loss → failover with live flow-state
// migration, recovery re-sync). The controller and fabric are documented
// single-threaded; the instances' internal mutex is what makes concurrent
// scan vs. engine swap vs. telemetry sampling race-free, and that is
// exactly what TSan checks here.
//
// The test also runs (slowly) in normal builds, so plain CI exercises the
// same interleavings without the data-race detection.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "netsim/fabric.hpp"
#include "netsim/host.hpp"
#include "service/controller.hpp"
#include "service/instance_node.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc {
namespace {

using namespace dpisvc::netsim;
using namespace dpisvc::service;

json::Value register_msg(int id, const char* name, bool stateful) {
  return json::parse(R"({"type":"register","middlebox_id":)" +
                     std::to_string(id) + R"(,"name":")" + name +
                     R"(","stateful":)" + (stateful ? "true" : "false") + "}");
}

json::Value add_exact_msg(int id, int rule, const std::string& text) {
  AddPatternsRequest req;
  req.middlebox = static_cast<dpi::MiddleboxId>(id);
  req.exact.push_back(ExactPatternMsg{static_cast<dpi::PatternId>(rule), text});
  return encode(req);
}

TEST(TsanStress, ConcurrentScanRegisterAndFailover) {
  FailoverConfig failover;
  failover.miss_windows = 2;
  DpiController controller({}, failover);
  controller.handle_message(register_msg(1, "ids", false));
  controller.handle_message(register_msg(2, "session-fw", true));
  controller.handle_message(register_msg(3, "av", false));

  const auto patterns =
      workload::generate_patterns(workload::snort_like(200, 29));
  dpi::PatternId rule = 0;
  for (const auto& pattern : patterns) {
    controller.handle_message(add_exact_msg(
        static_cast<int>(1 + rule % 3), static_cast<int>(rule), pattern));
    ++rule;
  }
  const dpi::ChainId chain1 = controller.register_policy_chain({1, 2, 3});
  const dpi::ChainId chain2 = controller.register_policy_chain({2});

  auto i1 = controller.create_instance("dpi1");
  auto i2 = controller.create_instance("dpi2");
  auto i3 = controller.create_instance("dpi3");
  controller.assign_chain(chain1, "dpi1");
  controller.assign_chain(chain2, "dpi3");
  ASSERT_TRUE(i1->has_engine());

  // The fabric is owned and ticked by the control-plane thread only; the
  // InstanceNode wraps the SAME i1 the scanner threads use directly, so
  // fabric traffic and direct scans contend on the instance mutex.
  Fabric fabric;
  fabric.add_node<Host>("gw");
  fabric.add_node<InstanceNode>("dpi1", i1);
  fabric.connect("gw", "dpi1");

  workload::TrafficConfig traffic;
  traffic.num_packets = 150;
  traffic.planted_match_rate = 0.3;
  traffic.planted_patterns.assign(patterns.begin(), patterns.begin() + 12);
  const auto trace = workload::generate_http_trace(traffic);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> raw_hits{0};

  const std::vector<std::shared_ptr<DpiInstance>> instances = {i1, i2, i3};
  std::vector<std::thread> threads;

  // Scanner threads: the stateful chain exercises the flow table (lookup +
  // cursor update) under the instance lock, racing the control thread's
  // engine pushes (which clear it) and failover flow export.
  constexpr int kScanners = 4;
  for (int t = 0; t < kScanners; ++t) {
    threads.emplace_back([&, t] {
      DpiInstance& inst = *instances[static_cast<std::size_t>(t) % 3];
      const dpi::ChainId chain = t % 2 == 0 ? chain1 : chain2;
      std::uint64_t local_scans = 0;
      std::uint64_t local_hits = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (const auto& p : trace) {
          local_hits += inst.scan(chain, p.tuple, p.payload).raw_hits;
          ++local_scans;
        }
        net::Packet tagged;
        tagged.tuple = trace.front().tuple;
        tagged.payload = trace.front().payload;
        tagged.push_tag(net::TagKind::kPolicyChain, chain);
        (void)inst.process(std::move(tagged));
      }
      scans += local_scans;
      raw_hits += local_hits;
    });
  }

  // Sampler thread: the controller's monitor view — concurrent telemetry
  // snapshots must never tear against running scans.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& inst : instances) {
        (void)inst->telemetry();
        (void)inst->chain_telemetry();
        (void)inst->active_flows();
        (void)inst->active_flow_keys();
        (void)inst->engine_version();
      }
      std::this_thread::yield();
    }
  });

  // Control-plane rounds, all from this thread.
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    // New pattern → full recompile → hot engine push into live scanners.
    controller.handle_message(
        add_exact_msg(1, 5000 + round, "hot-update-" + std::to_string(round)));

    // Drive tagged traffic through the fabric into the shared instance.
    for (int i = 0; i < 8; ++i) {
      net::Packet p;
      p.tuple = trace[static_cast<std::size_t>(i)].tuple;
      p.payload = trace[static_cast<std::size_t>(i)].payload;
      p.ip_id = static_cast<std::uint16_t>(round * 16 + i);
      p.push_tag(net::TagKind::kPolicyChain, chain1);
      fabric.send("gw", "dpi1", std::move(p));
    }
    fabric.run();

    controller.heartbeat("dpi1");
    controller.heartbeat("dpi2");
    if (round < 4 || round > 8) controller.heartbeat("dpi3");
    controller.collect_telemetry();

    if (controller.is_failed("dpi3")) {
      // dpi3 missed its windows mid-run: reassign its chain and migrate
      // surviving flow state while scanners still hammer all instances.
      const FailoverPlan plan = controller.evaluate_failover();
      (void)controller.apply_failover(plan);
      controller.recover_instance("dpi3");
    }
    std::this_thread::yield();
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  EXPECT_GT(scans.load(), 0u);
  EXPECT_GT(raw_hits.load(), 0u);
  EXPECT_FALSE(controller.is_failed("dpi3"));
  // The last control round pushed to every live instance, so all three end
  // on one engine version.
  EXPECT_EQ(i1->engine_version(), i2->engine_version());
  EXPECT_EQ(i2->engine_version(), i3->engine_version());
  const std::uint64_t total =
      i1->telemetry().packets + i2->telemetry().packets +
      i3->telemetry().packets + i1->telemetry().pass_through;
  EXPECT_GE(total, scans.load());
}

// Sharded-pool stress: batch submitters drive all shards of a multi-worker
// instance while the main thread hot-swaps engines (shard-by-shard) and
// migrates flow state out and back in bulk. Validates that shard mutexes,
// the control-plane lock, and the scan pool's dispatch/completion protocol
// compose race-free.
TEST(TsanStress, ShardedPoolScanVsSwapVsMigration) {
  auto compile_engine = [](std::size_t num_patterns, std::uint64_t seed) {
    dpi::EngineSpec spec;
    dpi::MiddleboxProfile ids;
    ids.id = 1;
    ids.name = "ids";
    dpi::MiddleboxProfile fw;
    fw.id = 2;
    fw.name = "session-fw";
    fw.stateful = true;
    spec.middleboxes = {ids, fw};
    dpi::PatternId rule = 0;
    for (const auto& pattern :
         workload::generate_patterns(workload::snort_like(num_patterns, seed))) {
      spec.exact_patterns.push_back(dpi::ExactPatternSpec{
          pattern, static_cast<dpi::MiddleboxId>(1 + rule % 2), rule});
      ++rule;
    }
    spec.chains[1] = {1, 2};  // stateful chain: flow tables are hot
    return dpi::Engine::compile(spec);
  };
  const auto engine_a = compile_engine(100, 7);
  const auto engine_b = compile_engine(150, 11);

  InstanceConfig config;
  config.num_workers = 4;
  config.max_flows = 256;
  DpiInstance inst("sharded", config);
  DpiInstance peer("peer", config);
  inst.load_engine(engine_a, 1);
  peer.load_engine(engine_a, 1);

  workload::TrafficConfig traffic;
  traffic.num_packets = 200;
  const auto trace = workload::generate_http_trace(traffic);
  std::vector<ScanItem> items;
  items.reserve(trace.size());
  for (const auto& p : trace) {
    items.push_back(ScanItem{1, p.tuple, BytesView(p.payload)});
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> packets{0};
  std::vector<std::thread> threads;

  // Two batch submitters + one per-packet scanner: every shard stays busy.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        packets += inst.scan_batch(items).size();
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& p : trace) {
        (void)inst.scan(1, p.tuple, p.payload);
      }
      packets += trace.size();
    }
  });

  // Telemetry sampler: aggregates across shards while they scan.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)inst.telemetry();
      (void)inst.active_flows();
      (void)inst.active_flow_keys();
      std::this_thread::yield();
    }
  });

  // Control plane (this thread): hot engine swaps and bulk flow migration
  // race the scanners above.
  for (int round = 0; round < 15; ++round) {
    const auto& engine = round % 2 == 0 ? engine_b : engine_a;
    inst.load_engine(engine, static_cast<std::uint64_t>(round + 2));
    peer.load_engine(engine, static_cast<std::uint64_t>(round + 2));
    // Drain the instance's shards into the peer and re-home the state.
    peer.import_flows(inst.export_all_flows());
    inst.import_flows(peer.export_all_flows());
    std::this_thread::yield();
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  EXPECT_GT(packets.load(), 0u);
  EXPECT_EQ(inst.telemetry().packets, packets.load());
  EXPECT_EQ(inst.engine_version(), peer.engine_version());
}


// Snapshot-and-reset coherence: while scanner threads run, a telemetry
// thread repeatedly drains the counters via reset_telemetry(). Every packet
// must land in exactly one snapshot (or in the final residual) — the sum of
// all drained windows plus what is left equals the total scanned. The
// wipe-only predecessor of reset_telemetry() lost the counts accumulated
// between its reads and its writes.
TEST(TsanStress, ResetTelemetryCoherentUnderConcurrentScans) {
  dpi::EngineSpec spec;
  spec.middleboxes = {dpi::MiddleboxProfile{1, "ids"}};
  spec.exact_patterns = {dpi::ExactPatternSpec{"attack", 1, 0}};
  spec.chains[1] = {1};
  auto engine = dpi::Engine::compile(spec);

  InstanceConfig config;
  config.num_workers = 2;
  DpiInstance inst("stress", config);
  inst.load_engine(engine, 1);

  workload::TrafficConfig traffic;
  traffic.num_packets = 400;
  traffic.num_flows = 16;
  traffic.planted_patterns = {"attack"};
  const workload::Trace trace = workload::generate_http_trace(traffic);

  constexpr int kScanners = 3;
  constexpr int kRepeats = 8;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drained_packets{0};
  std::atomic<std::uint64_t> drained_bytes{0};

  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const InstanceTelemetry window = inst.reset_telemetry();
      drained_packets.fetch_add(window.packets, std::memory_order_relaxed);
      drained_bytes.fetch_add(window.bytes, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> scanners;
  scanners.reserve(kScanners);
  for (int s = 0; s < kScanners; ++s) {
    scanners.emplace_back([&] {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (const auto& p : trace) {
          (void)inst.scan(1, p.tuple, p.payload);
        }
      }
    });
  }
  for (auto& t : scanners) t.join();
  done.store(true, std::memory_order_release);
  reaper.join();

  // Residual counts left after the last drain.
  const InstanceTelemetry rest = inst.reset_telemetry();
  const std::uint64_t expected_packets =
      static_cast<std::uint64_t>(kScanners) * kRepeats * trace.size();
  std::uint64_t expected_bytes = 0;
  for (const auto& p : trace) expected_bytes += p.payload.size();
  expected_bytes *= static_cast<std::uint64_t>(kScanners) * kRepeats;

  EXPECT_EQ(drained_packets.load() + rest.packets, expected_packets);
  EXPECT_EQ(drained_bytes.load() + rest.bytes, expected_bytes);
  // The obs registry is NOT reset by reset_telemetry(): its counters hold
  // the full total and must agree with the drained windows.
  const json::Value snap = inst.metrics().snapshot();
  std::uint64_t obs_packets = 0;
  for (const auto& [key, value] : snap.at("counters").as_object()) {
    if (key.size() > 8 && key.substr(key.size() - 8) == ".packets") {
      obs_packets += static_cast<std::uint64_t>(value.as_number());
    }
  }
  EXPECT_EQ(obs_packets, expected_packets);
}

}  // namespace
}  // namespace dpisvc
