// Tests for the static verifier (src/verify): a clean build must verify
// with zero diagnostics, and every §5.1 invariant violation — injected by
// corrupting a DfaSnapshot or EngineTables field-by-field — must be
// detected with its own precise diagnostic code. The corrupted fixtures are
// the point: they prove the verifier would actually catch the bugs it
// exists to catch (dense renumbering broken, suffix propagation skipped,
// stale bitmaps, cyclic failure links, de-sorted rows, wrong transitions).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ac/compressed_automaton.hpp"
#include "ac/full_automaton.hpp"
#include "ac/trie.hpp"
#include "verify/verifier.hpp"
#include "workload/pattern_gen.hpp"

namespace dpisvc {
namespace {

using verify::Diagnostic;
using verify::DfaSnapshot;

// Classic suffix-heavy set: "he" is a proper suffix of "she" and a prefix
// of "hers", so the suffix-closure rule is load-bearing everywhere.
const std::vector<std::string> kPatterns = {"he", "she", "his", "hers",
                                            "ushers"};

ac::Trie make_trie(const std::vector<std::string>& patterns) {
  ac::Trie trie;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    trie.insert(std::string_view(patterns[i]),
                static_cast<ac::PatternIndex>(i));
  }
  return trie;
}

DfaSnapshot full_snapshot(const std::vector<std::string>& patterns) {
  ac::Trie trie = make_trie(patterns);
  return verify::snapshot_of(ac::FullAutomaton::build(trie));
}

DfaSnapshot compressed_snapshot(const std::vector<std::string>& patterns) {
  ac::Trie trie = make_trie(patterns);
  return verify::snapshot_of(ac::CompressedAutomaton::build(trie));
}

bool has_code(const std::vector<Diagnostic>& diagnostics, const char* code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

std::string codes_of(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.code + ": " + d.message + "\n";
  }
  return out;
}

/// Walks the snapshot from the start state along `word`.
ac::StateIndex state_for(const DfaSnapshot& snap, std::string_view word) {
  ac::StateIndex s = snap.start;
  for (char c : word) {
    s = snap.step(s, static_cast<std::uint8_t>(c));
  }
  return s;
}

// --- clean builds verify clean ----------------------------------------------

TEST(Verifier, CleanFullAutomatonHasNoDiagnostics) {
  const auto diagnostics = verify::verify_dfa(full_snapshot(kPatterns),
                                              kPatterns);
  EXPECT_TRUE(diagnostics.empty()) << codes_of(diagnostics);
}

TEST(Verifier, CleanCompressedAutomatonHasNoDiagnostics) {
  const auto diagnostics =
      verify::verify_dfa(compressed_snapshot(kPatterns), kPatterns);
  EXPECT_TRUE(diagnostics.empty()) << codes_of(diagnostics);
}

TEST(Verifier, RepresentationsAreEquivalent) {
  const auto diagnostics = verify::check_equivalence(
      full_snapshot(kPatterns), compressed_snapshot(kPatterns));
  EXPECT_TRUE(diagnostics.empty()) << codes_of(diagnostics);
}

TEST(Verifier, CleanGeneratedSetVerifies) {
  const auto patterns =
      workload::generate_patterns(workload::snort_like(150, 7));
  const auto diagnostics = verify::verify_dfa(full_snapshot(patterns),
                                              patterns);
  EXPECT_TRUE(diagnostics.empty()) << codes_of(diagnostics);
}

// --- corrupted fixture 1: non-dense accepting renumbering --------------------

TEST(VerifierFixture, NonDenseAcceptingIdsDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  // Pretend the last accepting id was renumbered outside {0..f-1}: the state
  // still matches a pattern per the oracle, but `state < f` now denies it.
  ASSERT_GT(snap.num_accepting, 0u);
  snap.num_accepting -= 1;
  snap.match_table.pop_back();
  const auto diagnostics = verify::verify_dfa(snap, kPatterns);
  EXPECT_TRUE(has_code(diagnostics, "acceptance-divergence"))
      << codes_of(diagnostics);
}

// --- corrupted fixture 2: suffix propagation skipped -------------------------

TEST(VerifierFixture, MissingSuffixPropagationDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  // State "she" must also output "he" (proper suffix, §5.1). Drop it.
  const ac::StateIndex she = state_for(snap, "she");
  ASSERT_LT(she, snap.num_accepting);
  auto& row = snap.match_table[she];
  const auto he = std::find(row.begin(), row.end(),
                            static_cast<ac::PatternIndex>(0));  // "he" = 0
  ASSERT_NE(he, row.end()) << "fixture expects \"he\" propagated into \"she\"";
  row.erase(he);
  const auto diagnostics = verify::verify_dfa(snap, kPatterns);
  EXPECT_TRUE(has_code(diagnostics, "suffix-propagation-missing"))
      << codes_of(diagnostics);
  EXPECT_FALSE(has_code(diagnostics, "match-divergence"))
      << "missing suffix must be diagnosed precisely, not generically";
}

// --- corrupted fixture 3: stale accepting-state bitmap -----------------------

TEST(VerifierFixture, StaleAcceptBitmapDetected) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile p1;
  p1.id = 1;
  p1.name = "ids";
  dpi::MiddleboxProfile p2;
  p2.id = 2;
  p2.name = "av";
  spec.middleboxes = {p1, p2};
  dpi::PatternId rule = 0;
  for (const auto& pattern : kPatterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        pattern, static_cast<dpi::MiddleboxId>(1 + rule % 2), rule});
    ++rule;
  }
  spec.chains[1] = {1, 2};
  const auto engine = dpi::Engine::compile(spec);

  verify::EngineTables tables = verify::extract_tables(*engine);
  EXPECT_TRUE(verify::check_engine_tables(tables).empty());

  // A bitmap that stopped tracking its match targets silently suppresses
  // (extra bit: spurious wakeups) or drops (missing bit) matches.
  ASSERT_FALSE(tables.accept_bitmaps.empty());
  tables.accept_bitmaps[0] ^= dpi::bitmap_of(2);
  const auto diagnostics = verify::check_engine_tables(tables);
  EXPECT_TRUE(has_code(diagnostics, "bitmap-stale")) << codes_of(diagnostics);
}

// --- corrupted fixture 4: cyclic failure links -------------------------------

TEST(VerifierFixture, CyclicFailureLinkDetected) {
  DfaSnapshot snap = compressed_snapshot(kPatterns);
  ASSERT_EQ(snap.fail.size(), snap.num_states);
  // Tie two non-root states into a failure cycle: walking the chain from
  // either never reaches the root, which would hang the compressed scan.
  const ac::StateIndex a = state_for(snap, "sh");
  const ac::StateIndex b = state_for(snap, "she");
  ASSERT_NE(a, snap.start);
  ASSERT_NE(b, snap.start);
  snap.fail[a] = b;
  snap.fail[b] = a;
  const auto diagnostics = verify::check_failure_links(snap);
  EXPECT_TRUE(has_code(diagnostics, "failure-link-cycle"))
      << codes_of(diagnostics);
}

TEST(VerifierFixture, DepthIncreasingFailureLinkDetected) {
  DfaSnapshot snap = compressed_snapshot(kPatterns);
  const ac::StateIndex sh = state_for(snap, "sh");
  const ac::StateIndex she = state_for(snap, "she");
  snap.fail[sh] = she;  // deeper than "sh": depth must strictly decrease
  const auto diagnostics = verify::check_failure_links(snap);
  EXPECT_TRUE(has_code(diagnostics, "failure-link-depth"))
      << codes_of(diagnostics);
}

// --- corrupted fixture 5: de-sorted / duplicated match rows ------------------

TEST(VerifierFixture, UnsortedMatchRowDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  const ac::StateIndex she = state_for(snap, "she");
  auto& row = snap.match_table[she];
  ASSERT_GE(row.size(), 2u) << "\"she\" must output both \"she\" and \"he\"";
  std::swap(row.front(), row.back());
  const auto diagnostics = verify::check_match_rows(snap, kPatterns.size());
  EXPECT_TRUE(has_code(diagnostics, "match-row-unsorted"))
      << codes_of(diagnostics);
}

TEST(VerifierFixture, DuplicateMatchRowEntryDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  const ac::StateIndex she = state_for(snap, "she");
  auto& row = snap.match_table[she];
  row.push_back(row.back());
  const auto diagnostics = verify::check_match_rows(snap, kPatterns.size());
  EXPECT_TRUE(has_code(diagnostics, "match-row-duplicate"))
      << codes_of(diagnostics);
}

// --- corrupted fixture 6: wrong transition -----------------------------------

TEST(VerifierFixture, TransitionDivergenceDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  // Reroute delta("sh", 'e') to the root: "she"/"he" would never match when
  // reached through this edge.
  const ac::StateIndex sh = state_for(snap, "sh");
  snap.transitions[static_cast<std::size_t>(sh) * 256u +
                   static_cast<unsigned char>('e')] = snap.start;
  const auto diagnostics = verify::verify_dfa(snap, kPatterns);
  EXPECT_TRUE(has_code(diagnostics, "transition-divergence") ||
              has_code(diagnostics, "state-count"))
      << codes_of(diagnostics);
}

// --- structural + equivalence corruption -------------------------------------

TEST(VerifierFixture, MatchTableSizeMismatchDetected) {
  DfaSnapshot snap = full_snapshot(kPatterns);
  snap.match_table.emplace_back();
  const auto diagnostics = verify::check_structure(snap);
  EXPECT_TRUE(has_code(diagnostics, "match-table-size"))
      << codes_of(diagnostics);
}

TEST(VerifierFixture, RepresentationDivergenceDetected) {
  const DfaSnapshot full = full_snapshot(kPatterns);
  DfaSnapshot compressed = compressed_snapshot(kPatterns);
  compressed.transitions[static_cast<std::size_t>(compressed.start) * 256u +
                         static_cast<unsigned char>('h')] = compressed.start;
  const auto diagnostics = verify::check_equivalence(full, compressed);
  EXPECT_TRUE(has_code(diagnostics, "representation-divergence"))
      << codes_of(diagnostics);
}

// --- engine spec end-to-end --------------------------------------------------

TEST(Verifier, EngineSpecWithRegexesVerifies) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile p;
  p.id = 1;
  p.name = "ids";
  spec.middleboxes = {p};
  dpi::PatternId rule = 0;
  for (const auto& pattern : kPatterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{pattern, 1, rule++});
  }
  spec.regex_patterns.push_back(
      dpi::RegexPatternSpec{"User-Agent: [a-z]+bot", 1, 100, false});
  spec.chains[1] = {1};

  for (const bool compressed : {false, true}) {
    dpi::EngineConfig config;
    config.use_compressed_automaton = compressed;
    const auto diagnostics = verify::verify_engine_spec(spec, config);
    EXPECT_TRUE(diagnostics.empty()) << codes_of(diagnostics);
  }
}

TEST(Verifier, DiagnosticsAreCappedNotUnbounded) {
  DfaSnapshot snap = full_snapshot(
      workload::generate_patterns(workload::snort_like(200, 3)));
  // Systemic corruption: shift every transition's target by one.
  for (auto& t : snap.transitions) {
    t = (t + 1) % snap.num_states;
  }
  const auto diagnostics = verify::verify_dfa(
      snap, workload::generate_patterns(workload::snort_like(200, 3)));
  EXPECT_FALSE(diagnostics.empty());
  EXPECT_LE(diagnostics.size(), 200u);  // capped, not one per transition
}

}  // namespace
}  // namespace dpisvc
