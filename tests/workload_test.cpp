// Tests for the workload generators: pattern sets and traffic traces.
#include <gtest/gtest.h>

#include <set>

#include "regex/parser.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc::workload {
namespace {

TEST(PatternGen, CountAndDistinctness) {
  PatternSetConfig config;
  config.count = 500;
  const auto patterns = generate_patterns(config);
  EXPECT_EQ(patterns.size(), 500u);
  const std::set<std::string> unique(patterns.begin(), patterns.end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(PatternGen, RespectsLengthBounds) {
  PatternSetConfig config;
  config.count = 300;
  config.min_length = 8;
  config.max_length = 24;
  for (const auto& p : generate_patterns(config)) {
    EXPECT_GE(p.size(), 8u);
    // Shared-prefix extension can overshoot by less than one fragment.
    EXPECT_LE(p.size(), 24u + 16u);
  }
}

TEST(PatternGen, DeterministicInSeed) {
  PatternSetConfig config;
  config.count = 100;
  EXPECT_EQ(generate_patterns(config), generate_patterns(config));
  config.seed += 1;
  EXPECT_NE(generate_patterns(config), generate_patterns(PatternSetConfig{}));
}

TEST(PatternGen, SnortLikeIsPrintable) {
  auto config = snort_like(200);
  for (const auto& p : generate_patterns(config)) {
    for (unsigned char c : p) {
      EXPECT_TRUE(c >= 0x20 && c < 0x7F) << "non-printable byte in " << p;
    }
  }
}

TEST(PatternGen, ClamavLikeIsBinary) {
  auto config = clamav_like(300);
  bool any_nonprintable = false;
  for (const auto& p : generate_patterns(config)) {
    for (unsigned char c : p) {
      if (c < 0x20 || c >= 0x7F) any_nonprintable = true;
    }
  }
  EXPECT_TRUE(any_nonprintable);
}

TEST(PatternGen, SplitRandomPartitions) {
  const auto patterns = generate_patterns(snort_like(501));
  const auto parts = split_random(patterns, 2, 99);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size() + parts[1].size(), patterns.size());
  // Roughly even.
  EXPECT_NEAR(static_cast<double>(parts[0].size()), 250.5, 1.0);
  // Disjoint and complete.
  std::set<std::string> all(patterns.begin(), patterns.end());
  std::set<std::string> seen;
  for (const auto& part : parts) {
    for (const auto& p : part) {
      EXPECT_TRUE(all.count(p));
      EXPECT_TRUE(seen.insert(p).second) << "duplicate across parts";
    }
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(PatternGen, SplitRejectsZeroParts) {
  EXPECT_THROW(split_random({}, 0, 1), std::invalid_argument);
}

TEST(PatternGen, RegexRulesParse) {
  const auto rules = generate_regex_rules(50, 3);
  EXPECT_EQ(rules.size(), 50u);
  for (const auto& r : rules) {
    EXPECT_NO_THROW(regex::parse(r)) << r;
  }
}

TEST(TrafficGen, HttpTraceShape) {
  TrafficConfig config;
  config.num_packets = 200;
  config.min_payload = 100;
  config.max_payload = 500;
  config.num_flows = 10;
  const Trace trace = generate_http_trace(config);
  EXPECT_EQ(trace.size(), 200u);
  std::set<net::FiveTuple> flows;
  for (const auto& pkt : trace) {
    EXPECT_GE(pkt.payload.size(), 100u);
    EXPECT_LE(pkt.payload.size(), 500u);
    flows.insert(pkt.tuple);
  }
  EXPECT_EQ(flows.size(), 10u);
  EXPECT_GT(total_payload_bytes(trace), 200u * 100u);
}

TEST(TrafficGen, DeterministicInSeed) {
  TrafficConfig config;
  config.num_packets = 50;
  const Trace a = generate_http_trace(config);
  const Trace b = generate_http_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(TrafficGen, PlantedMatchRateApproximatelyHolds) {
  TrafficConfig config;
  config.num_packets = 2000;
  config.planted_match_rate = 0.1;
  config.planted_patterns = {"THISPATTERNISPLANTED"};
  const Trace trace = generate_http_trace(config);
  std::size_t with_match = 0;
  for (const auto& pkt : trace) {
    const std::string text(pkt.payload.begin(), pkt.payload.end());
    if (text.find("THISPATTERNISPLANTED") != std::string::npos) {
      ++with_match;
    }
  }
  EXPECT_NEAR(static_cast<double>(with_match) / 2000.0, 0.1, 0.03);
}

TEST(TrafficGen, NoPlantsWhenRateZero) {
  TrafficConfig config;
  config.num_packets = 300;
  config.planted_match_rate = 0.0;
  config.planted_patterns = {"NEVERPLANTED"};
  for (const auto& pkt : generate_http_trace(config)) {
    const std::string text(pkt.payload.begin(), pkt.payload.end());
    EXPECT_EQ(text.find("NEVERPLANTED"), std::string::npos);
  }
}

TEST(TrafficGen, AttackTraceIsDenseInPatternBytes) {
  TrafficConfig config;
  config.num_packets = 50;
  const std::vector<std::string> patterns = {"attacksig", "malware!"};
  const Trace trace = generate_attack_trace(config, patterns);
  std::size_t hits = 0;
  for (const auto& pkt : trace) {
    const std::string text(pkt.payload.begin(), pkt.payload.end());
    for (std::size_t at = text.find("attacksig"); at != std::string::npos;
         at = text.find("attacksig", at + 1)) {
      ++hits;
    }
  }
  // Payloads are stitched from the patterns: hits must be dense.
  EXPECT_GT(hits, trace.size());
}

TEST(TrafficGen, AttackTraceNeedsPatterns) {
  TrafficConfig config;
  EXPECT_THROW(generate_attack_trace(config, {}), std::invalid_argument);
}

TEST(TrafficGen, RejectsBadConfig) {
  TrafficConfig config;
  config.min_payload = 0;
  EXPECT_THROW(generate_http_trace(config), std::invalid_argument);
  config = TrafficConfig{};
  config.min_payload = 100;
  config.max_payload = 50;
  EXPECT_THROW(generate_random_trace(config), std::invalid_argument);
  config = TrafficConfig{};
  config.num_flows = 0;
  EXPECT_THROW(generate_http_trace(config), std::invalid_argument);
}

TEST(TrafficGen, ToPacketWiresThrough) {
  TrafficConfig config;
  config.num_packets = 1;
  const Trace trace = generate_http_trace(config);
  const net::Packet p = to_packet(trace[0], 42);
  EXPECT_EQ(p.ip_id, 42);
  EXPECT_EQ(p.payload, trace[0].payload);
  EXPECT_EQ(p.tuple, trace[0].tuple);
  // And the full wire round-trip still holds.
  EXPECT_EQ(net::Packet::from_wire(p.to_wire()).payload, p.payload);
}

}  // namespace
}  // namespace dpisvc::workload
