// Tests for the Wu-Manber matcher, including differential testing against
// both the naive reference and the Aho-Corasick automata.
#include <gtest/gtest.h>

#include <set>

#include "ac/full_automaton.hpp"
#include "ac/wu_manber.hpp"
#include "common/rng.hpp"

namespace dpisvc::ac {
namespace {

std::set<std::pair<std::uint64_t, PatternIndex>> wm_scan(
    const WuManber& matcher, std::string_view text) {
  std::set<std::pair<std::uint64_t, PatternIndex>> out;
  matcher.scan(to_bytes(text), [&](std::uint64_t end, PatternIndex index) {
    out.emplace(end, index);
  });
  return out;
}

std::set<std::pair<std::uint64_t, PatternIndex>> naive(
    const std::vector<std::string>& patterns, std::string_view text) {
  std::set<std::pair<std::uint64_t, PatternIndex>> out;
  for (PatternIndex i = 0; i < patterns.size(); ++i) {
    const std::string& p = patterns[i];
    for (std::size_t at = 0; at + p.size() <= text.size(); ++at) {
      if (text.substr(at, p.size()) == p) {
        out.emplace(at + p.size(), i);
      }
    }
  }
  return out;
}

TEST(WuManber, BasicMatches) {
  const std::vector<std::string> patterns = {"attack", "virus", "worm42"};
  const WuManber matcher = WuManber::build(patterns);
  const auto found = wm_scan(matcher, "an attack by a virus and worm42!");
  EXPECT_EQ(found, naive(patterns, "an attack by a virus and worm42!"));
  EXPECT_EQ(found.size(), 3u);
}

TEST(WuManber, WindowIsShortestPattern) {
  const WuManber matcher = WuManber::build({"abcdef", "xy"});
  EXPECT_EQ(matcher.window(), 2u);
}

TEST(WuManber, OverlappingOccurrences) {
  const std::vector<std::string> patterns = {"aa"};
  const WuManber matcher = WuManber::build(patterns);
  EXPECT_EQ(wm_scan(matcher, "aaaa"), naive(patterns, "aaaa"));
}

TEST(WuManber, PatternsSharingSuffixBlock) {
  const std::vector<std::string> patterns = {"xyzb", "ab", "cb"};
  const WuManber matcher = WuManber::build(patterns);
  const char* text = "xyzb ab cb b";
  EXPECT_EQ(wm_scan(matcher, text), naive(patterns, text));
}

TEST(WuManber, NoMatchesOnCleanText) {
  const WuManber matcher = WuManber::build({"needle"});
  EXPECT_TRUE(wm_scan(matcher, "haystack haystack").empty());
  EXPECT_TRUE(wm_scan(matcher, "").empty());
  EXPECT_TRUE(wm_scan(matcher, "n").empty());  // shorter than the window
}

TEST(WuManber, RejectsBadInput) {
  EXPECT_THROW(WuManber::build({}), std::invalid_argument);
  EXPECT_THROW(WuManber::build({"a"}), std::invalid_argument);
}

TEST(WuManber, BinaryPatterns) {
  const std::vector<std::string> patterns = {std::string("\x00\xFF\x80", 3),
                                             std::string("\xDE\xAD", 2)};
  const WuManber matcher = WuManber::build(patterns);
  std::string text("xx\x00\xFF\x80yy\xDE\xAD", 9);
  EXPECT_EQ(wm_scan(matcher, text).size(), 2u);
}

TEST(WuManber, MemoryAccounting) {
  const WuManber matcher = WuManber::build({"pattern-one", "pattern-two"});
  // Dominated by the two 64K-entry tables.
  EXPECT_GT(matcher.memory_bytes(), 65536u * 2);
}

class WuManberDifferential : public ::testing::TestWithParam<int> {};

TEST_P(WuManberDifferential, AgreesWithNaiveAndAhoCorasick) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<std::string> patterns;
    const std::size_t n = 1 + rng.index(8);
    for (std::size_t i = 0; i < n; ++i) {
      std::string p;
      const std::size_t len = 2 + rng.index(5);
      for (std::size_t j = 0; j < len; ++j) {
        p.push_back(static_cast<char>('a' + rng.index(3)));
      }
      patterns.push_back(std::move(p));
    }
    std::string text;
    const std::size_t text_len = rng.index(120);
    for (std::size_t j = 0; j < text_len; ++j) {
      text.push_back(static_cast<char>('a' + rng.index(3)));
    }

    const WuManber wm = WuManber::build(patterns);
    const auto wm_found = wm_scan(wm, text);
    EXPECT_EQ(wm_found, naive(patterns, text)) << text;

    // Differential vs the full-table AC automaton. Duplicate patterns in
    // the random set collapse to one trie terminal with both indices, so
    // compare via the naive reference on both sides.
    Trie trie;
    for (PatternIndex i = 0; i < patterns.size(); ++i) {
      trie.insert(patterns[i], i);
    }
    const FullAutomaton automaton = FullAutomaton::build(trie);
    std::set<std::pair<std::uint64_t, PatternIndex>> ac_found;
    automaton.scan(to_bytes(text), [&](Match m) {
      for (PatternIndex p : automaton.matches_at(m.accept_state)) {
        ac_found.emplace(m.end_offset, p);
      }
    });
    EXPECT_EQ(ac_found, wm_found) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WuManberDifferential, ::testing::Range(0, 6));

}  // namespace
}  // namespace dpisvc::ac
