// dpisvc_check — static verifier CLI for built DFAs and service state.
//
//   dpisvc_check --patterns FILE [--regex EXPR]... [--max-patterns N]
//   dpisvc_check --builtin
//
// Loads (or generates) pattern sets, compiles the combined engine in BOTH
// representations (full-table and compressed), and proves the §5 structural
// invariants against a definition-based oracle: dense accepting-state
// renumbering, suffix-pattern propagation, sorted/deduped match rows,
// acyclic depth-decreasing failure links, exact full/compressed equivalence,
// accepting-state bitmap consistency, and controller ref-count consistency.
//
// Exit status: 0 all invariants hold, 1 violations found (each printed as
// `FAIL <code>: <detail>`), 2 usage error. CI runs `--builtin` plus the
// generated example pattern sets on every sanitizer configuration; run it
// after any change to src/ac, src/dpi or src/compress.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "dpi/pattern_db.hpp"
#include "json/json.hpp"
#include "suite_specs.hpp"
#include "verify/verifier.hpp"
#include "workload/adversarial_gen.hpp"
#include "workload/trace_io.hpp"

using namespace dpisvc;

namespace {

struct Options {
  std::string patterns_file;
  std::vector<std::string> regexes;
  std::size_t max_patterns = 2000;
  bool builtin = false;
  bool json = false;  ///< machine-readable report on stdout (CI consumption)
  /// Run the batched-kernel checks (layout proof + scalar-oracle
  /// differential over adversarial traces) instead of the structural
  /// invariants.
  bool kernel_xcheck = false;
};

/// One verified suite, kept for the --json report.
struct SuiteResult {
  std::string name;
  std::size_t patterns = 0;
  std::size_t regexes = 0;
  double seconds = 0;
  std::vector<verify::Diagnostic> diagnostics;
};

json::Value report_json(const std::vector<SuiteResult>& results) {
  json::Array suites;
  std::size_t failures = 0;
  for (const SuiteResult& r : results) {
    json::Array diags;
    for (const auto& d : r.diagnostics) {
      diags.push_back(json::obj({{"code", d.code}, {"message", d.message}}));
    }
    failures += r.diagnostics.size();
    suites.push_back(json::obj({{"name", r.name},
                                {"patterns", r.patterns},
                                {"regexes", r.regexes},
                                {"seconds", r.seconds},
                                {"ok", r.diagnostics.empty()},
                                {"failures", std::move(diags)}}));
  }
  return json::obj({{"ok", failures == 0},
                    {"total_failures", failures},
                    {"suites", std::move(suites)}});
}

SuiteResult run_suite(const std::string& name,
                      const std::vector<std::string>& patterns,
                      const std::vector<std::string>& regexes, bool quiet) {
  Stopwatch watch;
  const dpi::EngineSpec spec = tools::make_spec(patterns, regexes);

  std::vector<verify::Diagnostic> diagnostics;
  auto append = [&diagnostics](std::vector<verify::Diagnostic> more) {
    diagnostics.insert(diagnostics.end(), more.begin(), more.end());
  };
  dpi::EngineConfig full;
  append(verify::verify_engine_spec(spec, full));
  dpi::EngineConfig compressed;
  compressed.use_compressed_automaton = true;
  append(verify::verify_engine_spec(spec, compressed));

  dpi::PatternDb db;
  tools::populate_db(db, spec);
  append(verify::check_pattern_db(db));
  // Pattern removal must drop the ref but keep shared bytes alive (§4.1);
  // re-check the ref-counts after mutating.
  if (!spec.exact_patterns.empty()) {
    const auto& first = spec.exact_patterns.front();
    db.remove_exact(first.middlebox, first.pattern_id);
    append(verify::check_pattern_db(db));
  }

  if (!quiet) {
    for (const auto& d : diagnostics) {
      std::printf("FAIL %-28s %s: %s\n", name.c_str(), d.code.c_str(),
                  d.message.c_str());
    }
    std::printf("%-28s %4zu patterns, %2zu regexes: %s (%.2f s)\n",
                name.c_str(), patterns.size(), regexes.size(),
                diagnostics.empty() ? "OK" : "FAILED",
                watch.elapsed_seconds());
  }
  return SuiteResult{name, patterns.size(), regexes.size(),
                     watch.elapsed_seconds(), std::move(diagnostics)};
}

/// Splits `stream` into packets of `chunk` bytes (the last may be short).
std::vector<Bytes> split_stream(const Bytes& stream, std::size_t chunk) {
  std::vector<Bytes> out;
  for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
    const std::size_t len = std::min(chunk, stream.size() - pos);
    out.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                     stream.begin() + static_cast<std::ptrdiff_t>(pos + len));
  }
  return out;
}

/// Adversarial packet sequences for the kernel differential: a clean stream
/// embedding the suite's patterns is pushed through the evasion generator
/// (tiny segments, shuffles, retransmit storms, conflicting overlaps, a
/// 32-bit sequence wrap), normalized under both overlap policies, and split
/// into packet sizes chosen to land pattern matches on and around the
/// kernel's stride boundaries.
std::vector<std::vector<Bytes>> kernel_xcheck_flows(
    const std::vector<std::string>& patterns) {
  Bytes clean;
  const std::string filler = "=filler bytes=";
  std::size_t used = 0;
  for (const std::string& p : patterns) {
    clean.insert(clean.end(), filler.begin(), filler.end());
    clean.insert(clean.end(), p.begin(), p.end());
    if (++used == 48) break;
  }
  const net::FiveTuple flow{net::Ipv4Addr(10, 0, 0, 1),
                            net::Ipv4Addr(10, 0, 0, 2), 40000, 80,
                            net::IpProto::kTcp};
  struct Variant {
    workload::EvasionSpec spec;
    std::size_t packet_bytes;
  };
  std::vector<Variant> variants;
  {
    workload::EvasionSpec s;  // plain small segments
    s.segment_bytes = 8;
    variants.push_back({s, 7});  // 7: every stride (4) boundary drifts
  }
  {
    workload::EvasionSpec s;
    s.seed = 2;
    s.shuffle = true;
    s.retransmit_rate = 0.3;
    variants.push_back({s, 3});  // resume mid-stride on every packet
  }
  {
    workload::EvasionSpec s;
    s.seed = 3;
    s.conflict = workload::ConflictMode::kDecoyLater;
    s.conflict_rate = 0.5;
    variants.push_back({s, 64});
  }
  {
    workload::EvasionSpec s;
    s.seed = 4;
    s.conflict = workload::ConflictMode::kDecoyFirst;
    s.conflict_rate = 0.5;
    variants.push_back({s, 5});
  }
  {
    workload::EvasionSpec s;  // stream straddling the 32-bit seq wrap
    s.seed = 5;
    s.initial_seq = 0xFFFFFFF0u;
    variants.push_back({s, 13});
  }

  std::vector<std::vector<Bytes>> flows;
  for (const Variant& v : variants) {
    const workload::AdversarialTrace trace =
        workload::make_evasion_trace(flow, BytesView(clean), v.spec);
    for (const net::OverlapPolicy policy :
         {net::OverlapPolicy::kFirstWins, net::OverlapPolicy::kLastWins}) {
      const workload::NormalizedView norm = workload::normalize_segments(
          trace.initial_seq, trace.segments, policy);
      if (norm.bytes.empty()) continue;
      flows.push_back(split_stream(norm.bytes, v.packet_bytes));
    }
  }
  flows.push_back({clean});              // one maximal packet
  flows.push_back(split_stream(clean, 1));  // every byte its own packet
  return flows;
}

/// Kernel verification of one suite: compiles the engine with the batched
/// kernel forced on (so the check also runs under DPISVC_FORCE_SCALAR CI
/// jobs), proves the hot-core layout against the full table, then runs the
/// scalar-oracle differential over the adversarial flows on both builtin
/// chains (1 = stateless+stateful mix, 2 = stateful only).
SuiteResult run_kernel_suite(const std::string& name,
                             const std::vector<std::string>& patterns,
                             const std::vector<std::string>& regexes,
                             bool quiet) {
  Stopwatch watch;
  const dpi::EngineSpec spec = tools::make_spec(patterns, regexes);
  std::vector<verify::Diagnostic> diagnostics;
  auto append = [&diagnostics](std::vector<verify::Diagnostic> more) {
    diagnostics.insert(diagnostics.end(), more.begin(), more.end());
  };
  std::shared_ptr<const dpi::Engine> engine;
  dpi::EngineConfig config;
  config.kernel = dpi::ScanKernel::kBatched;
  try {
    engine = dpi::Engine::compile(spec, config);
  } catch (const std::exception& e) {
    diagnostics.push_back(verify::Diagnostic{"compile-error", e.what()});
  }
  if (engine != nullptr) {
    const auto* full =
        std::get_if<ac::FullAutomaton>(&engine->automaton());
    if (full == nullptr || engine->hot_kernel() == nullptr) {
      diagnostics.push_back(verify::Diagnostic{
          "kernel-unavailable", "engine built no batched kernel"});
    } else {
      append(verify::check_hot_kernel(*full, *engine->hot_kernel()));
      const auto flows = kernel_xcheck_flows(patterns);
      append(verify::cross_check_kernel(*engine, 1, flows));
      append(verify::cross_check_kernel(*engine, 2, flows));
    }
  }
  const std::string suite_name = name + "/kernel";
  if (!quiet) {
    for (const auto& d : diagnostics) {
      std::printf("FAIL %-28s %s: %s\n", suite_name.c_str(), d.code.c_str(),
                  d.message.c_str());
    }
    std::printf("%-28s %4zu patterns, %2zu regexes: %s (%.2f s)\n",
                suite_name.c_str(), patterns.size(), regexes.size(),
                diagnostics.empty() ? "OK" : "FAILED",
                watch.elapsed_seconds());
  }
  return SuiteResult{suite_name, patterns.size(), regexes.size(),
                     watch.elapsed_seconds(), std::move(diagnostics)};
}

void cmd_builtin(std::vector<SuiteResult>& results, bool kernel_xcheck,
                 bool quiet) {
  for (const tools::Suite& suite : tools::builtin_suites()) {
    if (kernel_xcheck) {
      results.push_back(
          run_kernel_suite(suite.name, suite.patterns, suite.regexes, quiet));
    } else {
      results.push_back(
          run_suite(suite.name, suite.patterns, suite.regexes, quiet));
    }
  }
}

void usage() {
  std::fprintf(stderr, R"(usage: dpisvc_check [options]

  --patterns FILE    verify the engine compiled from a pattern file
  --regex EXPR       add a regex registration (repeatable)
  --max-patterns N   cap the number of patterns read from FILE (default 2000)
  --builtin          verify generated snort-like/clamav-like sets and a
                     handcrafted suffix-heavy suite
  --kernel-xcheck    instead of the structural invariants, prove the batched
                     scan kernel: hot-core layout vs the full table, and a
                     scalar-oracle differential over adversarial evasion
                     traces (match sets, counters, resumed cursors)
  --json             print one machine-readable JSON report on stdout instead
                     of per-suite lines (CI artifact; exit status unchanged)

exit status: 0 = all invariants hold, 1 = violations found, 2 = usage error
)");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--builtin") {
      opt.builtin = true;
    } else if (arg == "--kernel-xcheck") {
      opt.kernel_xcheck = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--patterns" && i + 1 < argc) {
      opt.patterns_file = argv[++i];
    } else if (arg == "--regex" && i + 1 < argc) {
      opt.regexes.push_back(argv[++i]);
    } else if (arg == "--max-patterns" && i + 1 < argc) {
      opt.max_patterns = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      usage();
      return 2;
    }
  }
  if (!opt.builtin && opt.patterns_file.empty()) {
    usage();
    return 2;
  }
  try {
    std::vector<SuiteResult> results;
    if (opt.builtin) {
      cmd_builtin(results, opt.kernel_xcheck, opt.json);
    }
    if (!opt.patterns_file.empty()) {
      auto patterns = workload::load_patterns(opt.patterns_file);
      if (patterns.size() > opt.max_patterns) {
        patterns.resize(opt.max_patterns);
      }
      if (opt.kernel_xcheck) {
        results.push_back(run_kernel_suite(opt.patterns_file, patterns,
                                           opt.regexes, opt.json));
      } else {
        results.push_back(
            run_suite(opt.patterns_file, patterns, opt.regexes, opt.json));
      }
    }
    std::size_t failures = 0;
    for (const SuiteResult& r : results) {
      failures += r.diagnostics.size();
    }
    if (opt.json) {
      std::printf("%s\n", json::dump(report_json(results)).c_str());
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
