// dpisvc — command-line front end for the DPI-service library.
//
//   dpisvc gen-patterns --style snort|clamav --count N [--seed S] --out FILE
//   dpisvc gen-trace    --packets N [--seed S] [--match-rate R]
//                       [--style http|random] [--patterns FILE] --out FILE
//   dpisvc inspect      --patterns FILE [--compressed]
//   dpisvc scan         --patterns FILE --trace FILE [--compressed]
//                       [--decompress] [--verbose]
//   dpisvc bench        --patterns FILE --trace FILE [--mb N] [--compressed]
//
// Everything the CLI does goes through the public library API; it exists so
// the engine can be driven from shell scripts and CI without writing C++.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/timer.hpp"
#include "dpi/engine.hpp"
#include "service/instance.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/trace_io.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const std::string& require(const std::string& key) const {
    auto it = options.find(key);
    if (it == options.end()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    return it->second;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }

  bool has_flag(const std::string& key) const {
    return options.count(key) > 0;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    throw std::invalid_argument("no command given");
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + token);
    }
    const std::string key = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

std::shared_ptr<const dpi::Engine> compile_engine(
    const std::vector<std::string>& patterns, bool compressed) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile profile;
  profile.id = 1;
  profile.name = "cli";
  spec.middleboxes = {profile};
  dpi::PatternId id = 0;
  for (const std::string& p : patterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 1, id++});
  }
  spec.chains[1] = {1};
  dpi::EngineConfig config;
  config.use_compressed_automaton = compressed;
  return dpi::Engine::compile(spec, config);
}

int cmd_gen_patterns(const Args& args) {
  const std::string style = args.get("style", "snort");
  const auto count = static_cast<std::size_t>(args.get_u64("count", 1000));
  const std::uint64_t seed = args.get_u64("seed", 17);
  workload::PatternSetConfig config = style == "clamav"
                                          ? workload::clamav_like(count, seed)
                                          : workload::snort_like(count, seed);
  const auto patterns = workload::generate_patterns(config);
  workload::save_patterns(args.require("out"), patterns);
  std::printf("wrote %zu %s-like patterns to %s\n", patterns.size(),
              style.c_str(), args.require("out").c_str());
  return 0;
}

int cmd_gen_trace(const Args& args) {
  workload::TrafficConfig config;
  config.num_packets = static_cast<std::size_t>(args.get_u64("packets", 1000));
  config.seed = args.get_u64("seed", 7);
  config.planted_match_rate = args.get_double("match-rate", 0.05);
  config.num_flows = static_cast<std::size_t>(args.get_u64("flows", 64));
  if (args.options.count("patterns")) {
    auto patterns = workload::load_patterns(args.require("patterns"));
    const std::size_t take = std::min<std::size_t>(patterns.size(), 32);
    config.planted_patterns.assign(patterns.begin(),
                                   patterns.begin() + static_cast<long>(take));
  }
  const std::string style = args.get("style", "http");
  const workload::Trace trace = style == "random"
                                    ? workload::generate_random_trace(config)
                                    : workload::generate_http_trace(config);
  workload::save_trace(args.require("out"), trace);
  std::printf("wrote %zu packets (%zu payload bytes) to %s\n", trace.size(),
              workload::total_payload_bytes(trace),
              args.require("out").c_str());
  return 0;
}

int cmd_inspect(const Args& args) {
  const auto patterns = workload::load_patterns(args.require("patterns"));
  Stopwatch build;
  auto engine = compile_engine(patterns, args.has_flag("compressed"));
  std::printf("patterns:          %zu\n", patterns.size());
  std::printf("distinct strings:  %zu\n", engine->num_distinct_strings());
  std::printf("automaton:         %s\n",
              engine->uses_compressed_automaton() ? "compressed (failure-link)"
                                                  : "full-table");
  std::printf("states:            %u\n", engine->num_automaton_states());
  std::printf("memory:            %.2f MB\n", engine->memory_bytes() / 1e6);
  std::printf("build time:        %.2f s\n", build.elapsed_seconds());
  return 0;
}

int cmd_scan(const Args& args) {
  const auto patterns = workload::load_patterns(args.require("patterns"));
  const auto trace = workload::load_trace(args.require("trace"));
  service::InstanceConfig config;
  config.decompress_payloads = args.has_flag("decompress");
  service::DpiInstance instance("cli", config);
  instance.load_engine(compile_engine(patterns, args.has_flag("compressed")),
                       1);

  std::size_t match_packets = 0;
  std::size_t total_matches = 0;
  for (const workload::TracePacket& p : trace) {
    const auto result = instance.scan(1, p.tuple, p.payload);
    if (!result.has_matches()) continue;
    ++match_packets;
    for (const auto& section : result.matches) {
      for (const auto& entry : section.entries) {
        total_matches += entry.run_length;
        if (args.has_flag("verbose")) {
          std::printf("%s rule=%u pos=%u x%u\n", p.tuple.to_string().c_str(),
                      entry.pattern_id, entry.position, entry.run_length);
        }
      }
    }
  }
  const auto& t = instance.telemetry();
  std::printf("packets:          %llu\n",
              static_cast<unsigned long long>(t.packets));
  std::printf("bytes scanned:    %llu\n",
              static_cast<unsigned long long>(t.bytes));
  std::printf("matching packets: %zu (%.1f%%)\n", match_packets,
              trace.empty() ? 0.0
                            : 100.0 * static_cast<double>(match_packets) /
                                  static_cast<double>(trace.size()));
  std::printf("total matches:    %zu\n", total_matches);
  std::printf("decompressed:     %llu packets\n",
              static_cast<unsigned long long>(t.decompressed_packets));
  std::printf("throughput:       %.0f Mbps\n",
              to_mbps(t.bytes, t.busy_seconds));
  return 0;
}

int cmd_bench(const Args& args) {
  const auto patterns = workload::load_patterns(args.require("patterns"));
  const auto trace = workload::load_trace(args.require("trace"));
  auto engine = compile_engine(patterns, args.has_flag("compressed"));
  const std::uint64_t target_bytes = args.get_u64("mb", 64) << 20;
  const std::uint64_t trace_bytes = workload::total_payload_bytes(trace);
  if (trace_bytes == 0) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  for (const auto& p : trace) {
    (void)engine->scan_packet(1, p.payload);  // warm-up
  }
  std::uint64_t scanned = 0;
  Stopwatch watch;
  while (scanned < target_bytes) {
    for (const auto& p : trace) {
      (void)engine->scan_packet(1, p.payload);
    }
    scanned += trace_bytes;
  }
  const double seconds = watch.elapsed_seconds();
  std::printf("%llu bytes in %.2f s = %.0f Mbps\n",
              static_cast<unsigned long long>(scanned), seconds,
              to_mbps(scanned, seconds));
  return 0;
}

void usage() {
  std::fprintf(stderr, R"(usage: dpisvc <command> [options]

commands:
  gen-patterns  --style snort|clamav --count N [--seed S] --out FILE
  gen-trace     --packets N [--seed S] [--match-rate R] [--flows F]
                [--style http|random] [--patterns FILE] --out FILE
  inspect       --patterns FILE [--compressed]
  scan          --patterns FILE --trace FILE [--compressed] [--decompress]
                [--verbose]
  bench         --patterns FILE --trace FILE [--mb N] [--compressed]
)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "gen-patterns") return cmd_gen_patterns(args);
    if (args.command == "gen-trace") return cmd_gen_trace(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "scan") return cmd_scan(args);
    if (args.command == "bench") return cmd_bench(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 1;
  }
}
