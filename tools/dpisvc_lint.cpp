// dpisvc_lint — static pattern-set admission analyzer CLI.
//
//   dpisvc_lint --builtin [--json] [--calibrate] [budget knobs]
//   dpisvc_lint --patterns FILE [--regex EXPR]... [...]
//
// Runs the src/analysis cost model over pattern sets WITHOUT compiling them:
// predicts the combined engine's automaton states, accepting states, match
// rows and memory in both representations, per-regex Pike-VM program size
// and bounded subset-construction DFA estimates, and judges everything
// against the same AnalysisBudget the controller's admission control
// enforces at registration time. This is the offline half of the admission
// story: a tenant can lint a candidate pattern set against the service
// budget before submitting it.
//
// --calibrate additionally compiles each admissible suite in BOTH automaton
// representations and cross-checks every prediction against the real
// engine; any divergence is a "calibration-divergence" diagnostic (the cost
// model is exact, so CI treats divergence as a bug, not noise).
//
// Exit status: 0 all suites admissible (and calibrated when requested),
// 1 violations or calibration divergence found, 2 usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/timer.hpp"
#include "json/json.hpp"
#include "suite_specs.hpp"
#include "workload/trace_io.hpp"

using namespace dpisvc;

namespace {

struct Options {
  std::string patterns_file;
  std::vector<std::string> regexes;
  std::size_t max_patterns = 2000;
  bool builtin = false;
  bool json = false;
  bool calibrate = false;
  bool compressed = false;  ///< budget the compressed representation
  analysis::AnalysisBudget budget;
};

struct SuiteResult {
  std::string name;
  std::size_t patterns = 0;
  std::size_t regexes = 0;
  double seconds = 0;
  analysis::PatternSetReport report;
  /// Calibration mismatches (code "calibration-divergence"), empty when
  /// calibration was skipped or matched exactly.
  std::vector<verify::Diagnostic> calibration;

  bool ok() const {
    return report.admissible() && calibration.empty();
  }
};

/// Compiles the spec in one representation and diffs every prediction the
/// analyzer makes against the real engine. The cost model is exact
/// (analysis::kMemoryCalibrationFactor == 1), so any difference is a defect.
void calibrate_one(const dpi::EngineSpec& spec, bool compressed,
                   const analysis::PatternSetReport& report,
                   std::vector<verify::Diagnostic>& out) {
  dpi::EngineConfig config;
  config.use_compressed_automaton = compressed;
  const char* mode = compressed ? "compressed" : "full";
  std::shared_ptr<const dpi::Engine> engine;
  try {
    engine = dpi::Engine::compile(spec, config);
  } catch (const std::exception& e) {
    out.push_back(verify::Diagnostic{
        "calibration-divergence",
        std::string("analysis admitted but compile(") + mode +
            ") threw: " + e.what()});
    return;
  }
  const auto check = [&](const char* what, std::size_t predicted,
                         std::size_t actual) {
    if (predicted != actual) {
      out.push_back(verify::Diagnostic{
          "calibration-divergence",
          std::string(what) + " (" + mode +
              "): predicted " + std::to_string(predicted) + ", actual " +
              std::to_string(actual)});
    }
  };
  check("automaton-states", report.predicted_states,
        engine->num_automaton_states());
  check("accepting-states", report.predicted_accepting,
        engine->num_accepting_states());
  check("distinct-strings", report.distinct_strings,
        engine->num_distinct_strings());
  check("memory-bytes",
        compressed ? report.predicted_memory_compressed
                   : report.predicted_memory_full,
        engine->memory_bytes());
}

SuiteResult run_suite(const std::string& name,
                      const std::vector<std::string>& patterns,
                      const std::vector<std::string>& regexes,
                      const Options& opt) {
  Stopwatch watch;
  const dpi::EngineSpec spec = tools::make_spec(patterns, regexes);

  analysis::AnalysisOptions options;
  options.budget = opt.budget;
  options.engine.use_compressed_automaton = opt.compressed;

  SuiteResult result;
  result.name = name;
  result.patterns = patterns.size();
  result.regexes = regexes.size();
  result.report = analysis::analyze(spec, options);
  if (opt.calibrate && result.report.admissible()) {
    calibrate_one(spec, /*compressed=*/false, result.report,
                  result.calibration);
    calibrate_one(spec, /*compressed=*/true, result.report,
                  result.calibration);
  }
  result.seconds = watch.elapsed_seconds();

  if (!opt.json) {
    for (const auto& d : result.report.violations) {
      std::printf("FAIL %-24s %s: %s\n", name.c_str(), d.code.c_str(),
                  d.message.c_str());
    }
    for (const auto& d : result.calibration) {
      std::printf("FAIL %-24s %s: %s\n", name.c_str(), d.code.c_str(),
                  d.message.c_str());
    }
    for (const auto& d : result.report.warnings) {
      std::printf("warn %-24s %s: %s\n", name.c_str(), d.code.c_str(),
                  d.message.c_str());
    }
    const auto& r = result.report;
    std::printf(
        "%-24s %4zu patterns %2zu regexes -> %zu states, %zu accepting, "
        "%zu/%zu bytes (full/compressed): %s (%.2f s)\n",
        name.c_str(), patterns.size(), regexes.size(), r.predicted_states,
        r.predicted_accepting, r.predicted_memory_full,
        r.predicted_memory_compressed,
        result.ok() ? (opt.calibrate ? "OK (calibrated)" : "OK") : "FAILED",
        result.seconds);
  }
  return result;
}

json::Value diagnostics_json(const std::vector<verify::Diagnostic>& diags) {
  json::Array out;
  for (const auto& d : diags) {
    out.push_back(json::obj({{"code", d.code}, {"message", d.message}}));
  }
  return json::Value(std::move(out));
}

json::Value report_json(const std::vector<SuiteResult>& results) {
  json::Array suites;
  std::size_t failures = 0;
  for (const SuiteResult& r : results) {
    failures += r.report.violations.size() + r.calibration.size();
    json::Array regex_costs;
    for (const auto& rr : r.report.regexes) {
      regex_costs.push_back(json::obj(
          {{"middlebox", std::uint64_t{rr.middlebox}},
           {"rule", std::uint64_t{rr.pattern_id}},
           {"nfa_instructions", rr.cost.nfa_instructions},
           {"dfa_states", rr.cost.dfa_states},
           {"dfa_capped", rr.cost.dfa_capped},
           {"byte_classes", rr.cost.byte_classes},
           {"anchors", rr.cost.anchor_count},
           {"anchorless", rr.cost.anchorless},
           {"unbounded_repeat", rr.cost.has_unbounded_repeat}}));
    }
    suites.push_back(json::obj(
        {{"name", r.name},
         {"patterns", r.patterns},
         {"regexes", r.regexes},
         {"seconds", r.seconds},
         {"ok", r.ok()},
         {"predicted_states", r.report.predicted_states},
         {"predicted_accepting", r.report.predicted_accepting},
         {"predicted_match_entries", r.report.predicted_match_entries},
         {"distinct_strings", r.report.distinct_strings},
         {"anchor_bits", r.report.anchor_bits},
         {"predicted_memory_full", r.report.predicted_memory_full},
         {"predicted_memory_compressed",
          r.report.predicted_memory_compressed},
         {"total_regex_instructions", r.report.total_regex_instructions},
         {"trie_shared_prefix_bytes", r.report.trie.shared_prefix_bytes},
         {"regex_costs", std::move(regex_costs)},
         {"violations", diagnostics_json(r.report.violations)},
         {"warnings", diagnostics_json(r.report.warnings)},
         {"calibration", diagnostics_json(r.calibration)}}));
  }
  return json::obj({{"ok", failures == 0},
                    {"total_failures", failures},
                    {"suites", std::move(suites)}});
}

void usage() {
  std::fprintf(stderr, R"(usage: dpisvc_lint [options]

inputs:
  --patterns FILE        analyze the pattern set in FILE (one per line)
  --regex EXPR           add a regex registration (repeatable)
  --max-patterns N       cap patterns read from FILE (default 2000)
  --builtin              analyze the built-in seed workloads (classic,
                         snort-like, clamav-like)

budget knobs (0 = unlimited; same semantics as the controller's admission):
  --max-states N         predicted combined-automaton state budget
  --max-memory BYTES     predicted engine memory budget (for the selected
                         representation; see --compressed)
  --max-regex-nfa N      per-expression Pike-VM instruction budget
  --max-regex-dfa N      per-expression DFA state budget (capped == over)
  --max-per-middlebox N  patterns per middlebox quota
  --reject-anchorless    reject regexes with no literal anchor
  --reject-unbounded     reject '*' / '+' / '{m,}' repeats
  --compressed           budget the compressed-automaton memory model

modes:
  --calibrate            also compile each admissible suite (both automaton
                         representations) and fail on any divergence between
                         prediction and the real engine
  --json                 one machine-readable JSON report on stdout

exit status: 0 = admissible (and calibrated), 1 = violations, 2 = usage error
)");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const auto next_u64 = [&](int& i) {
    return static_cast<std::size_t>(std::stoull(argv[++i]));
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--builtin") {
      opt.builtin = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--calibrate") {
      opt.calibrate = true;
    } else if (arg == "--compressed") {
      opt.compressed = true;
    } else if (arg == "--reject-anchorless") {
      opt.budget.reject_anchorless_regex = true;
    } else if (arg == "--reject-unbounded") {
      opt.budget.reject_unbounded_repeat = true;
    } else if (arg == "--patterns" && has_value) {
      opt.patterns_file = argv[++i];
    } else if (arg == "--regex" && has_value) {
      opt.regexes.push_back(argv[++i]);
    } else if (arg == "--max-patterns" && has_value) {
      opt.max_patterns = next_u64(i);
    } else if (arg == "--max-states" && has_value) {
      opt.budget.max_automaton_states = next_u64(i);
    } else if (arg == "--max-memory" && has_value) {
      opt.budget.max_memory_bytes = next_u64(i);
    } else if (arg == "--max-regex-nfa" && has_value) {
      opt.budget.max_regex_nfa_instructions = next_u64(i);
    } else if (arg == "--max-regex-dfa" && has_value) {
      opt.budget.max_regex_dfa_states = next_u64(i);
    } else if (arg == "--max-per-middlebox" && has_value) {
      opt.budget.max_patterns_per_middlebox = next_u64(i);
    } else {
      usage();
      return 2;
    }
  }
  if (!opt.builtin && opt.patterns_file.empty()) {
    usage();
    return 2;
  }
  try {
    std::vector<SuiteResult> results;
    if (opt.builtin) {
      for (const tools::Suite& suite : tools::builtin_suites()) {
        results.push_back(
            run_suite(suite.name, suite.patterns, suite.regexes, opt));
      }
    }
    if (!opt.patterns_file.empty()) {
      auto patterns = workload::load_patterns(opt.patterns_file);
      if (patterns.size() > opt.max_patterns) {
        patterns.resize(opt.max_patterns);
      }
      results.push_back(
          run_suite(opt.patterns_file, patterns, opt.regexes, opt));
    }
    bool ok = true;
    for (const SuiteResult& r : results) {
      ok = ok && r.ok();
    }
    if (opt.json) {
      std::printf("%s\n", json::dump(report_json(results)).c_str());
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
