// dpisvc_mc — exhaustive concurrency model checker for the lock-free
// ingest/scan-pool primitives (DESIGN.md §7).
//
//   dpisvc_mc --list                      enumerate scenarios
//   dpisvc_mc                             run every scenario
//   dpisvc_mc --scenario ring_spsc        run one scenario
//   dpisvc_mc --max-preemptions 2         override the preemption bound
//   dpisvc_mc --max-executions N          cap the number of interleavings
//   dpisvc_mc --json                      machine-readable report
//
// Exit status: 0 when every selected scenario verifies, 1 on any diagnostic
// (the failing schedule is printed and is replayable via Explorer::replay),
// 2 on usage errors.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "mc/scenario.hpp"

namespace {

using dpisvc::mc::ExploreResult;
using dpisvc::mc::Explorer;
using dpisvc::mc::ScenarioInfo;

struct Args {
  bool list = false;
  bool json = false;
  std::string scenario;        // empty = all
  int max_preemptions = -999;  // sentinel: keep per-scenario default
  std::uint64_t max_executions = 0;  // 0 = keep default
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dpisvc_mc [--list] [--scenario NAME] "
               "[--max-preemptions N] [--max-executions N] [--json]\n");
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dpisvc_mc: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(a, "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(a, "--scenario") == 0) {
      const char* v = next_value("--scenario");
      if (v == nullptr) return false;
      args.scenario = v;
    } else if (std::strcmp(a, "--max-preemptions") == 0) {
      const char* v = next_value("--max-preemptions");
      if (v == nullptr) return false;
      args.max_preemptions = std::atoi(v);
    } else if (std::strcmp(a, "--max-executions") == 0) {
      const char* v = next_value("--max-executions");
      if (v == nullptr) return false;
      args.max_executions = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "dpisvc_mc: unknown argument '%s'\n", a);
      return false;
    }
  }
  return true;
}

ExploreResult run_scenario(const ScenarioInfo& s, const Args& args) {
  dpisvc::mc::ExploreOptions opts = s.options;
  if (args.max_preemptions != -999) opts.max_preemptions = args.max_preemptions;
  if (args.max_executions != 0) opts.max_executions = args.max_executions;
  Explorer explorer(opts);
  return explorer.explore(s.body);
}

dpisvc::json::Value result_json(const ScenarioInfo& s,
                                const ExploreResult& res) {
  using dpisvc::json::Object;
  using dpisvc::json::Value;
  Object v;
  v["scenario"] = Value(s.name);
  v["executions"] = Value(static_cast<std::uint64_t>(res.executions));
  v["transitions"] = Value(static_cast<std::uint64_t>(res.transitions));
  v["exhausted"] = Value(res.exhausted);
  v["hit_execution_bound"] = Value(res.hit_execution_bound);
  v["ok"] = Value(res.ok());
  if (res.bug.has_value()) {
    Object bug;
    bug["code"] = Value(res.bug->code);
    bug["message"] = Value(res.bug->message);
    dpisvc::json::Array sched;
    for (std::size_t c : res.bug->schedule) {
      sched.emplace_back(static_cast<std::uint64_t>(c));
    }
    bug["schedule"] = Value(std::move(sched));
    dpisvc::json::Array text;
    for (const std::string& line : res.bug->schedule_text) {
      text.emplace_back(line);
    }
    bug["schedule_text"] = Value(std::move(text));
    v["bug"] = Value(std::move(bug));
  }
  return Value(std::move(v));
}

void print_result(const ScenarioInfo& s, const ExploreResult& res) {
  std::printf("%-18s %s  executions=%llu transitions=%llu%s%s\n", s.name.c_str(),
              res.ok() ? "ok " : "BUG",
              static_cast<unsigned long long>(res.executions),
              static_cast<unsigned long long>(res.transitions),
              res.exhausted ? " (exhausted)" : "",
              res.hit_execution_bound ? " (hit execution bound)" : "");
  if (res.bug.has_value()) {
    std::printf("  %s: %s\n", res.bug->code.c_str(), res.bug->message.c_str());
    std::printf("  failing schedule (replayable choice ids:");
    for (std::size_t c : res.bug->schedule) {
      std::printf(" %zu", c);
    }
    std::printf("):\n");
    for (const std::string& line : res.bug->schedule_text) {
      std::printf("    %s\n", line.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage(stderr);
    return 2;
  }

  const auto& registry = dpisvc::mc::scenario_registry();

  if (args.list) {
    for (const ScenarioInfo& s : registry) {
      std::printf("%-18s %s\n", s.name.c_str(), s.description.c_str());
    }
    return 0;
  }

  std::vector<const ScenarioInfo*> selected;
  if (!args.scenario.empty()) {
    const ScenarioInfo* s = dpisvc::mc::find_scenario(args.scenario);
    if (s == nullptr) {
      std::fprintf(stderr,
                   "dpisvc_mc: unknown scenario '%s' (see --list)\n",
                   args.scenario.c_str());
      return 2;
    }
    selected.push_back(s);
  } else {
    for (const ScenarioInfo& s : registry) selected.push_back(&s);
  }

  bool any_bug = false;
  dpisvc::json::Array report;
  for (const ScenarioInfo* s : selected) {
    const ExploreResult res = run_scenario(*s, args);
    any_bug = any_bug || !res.ok();
    if (args.json) {
      report.push_back(result_json(*s, res));
    } else {
      print_result(*s, res);
    }
  }
  if (args.json) {
    std::printf("%s\n",
                dpisvc::json::dump(dpisvc::json::Value(std::move(report)))
                    .c_str());
  }
  return any_bug ? 1 : 0;
}
