// dpisvc_stats — end-to-end smoke driver for the telemetry channel.
//
//   dpisvc_stats [--json] [--packets N] [--workers N] [--trace N]
//                [--match-rate R] [--seed S]
//
// Builds an in-process DPI service (controller + one instance), registers a
// stateless and a stateful middlebox with exact and regex patterns, scans a
// generated HTTP-like trace plus an adversarial evasion trace (conflicting
// TCP overlaps and IP fragments through the defrag+reassembly ingest, so
// the ambiguity counters report real activity), then exercises the full
// telemetry loop the way a remote operator would: the instance's
// TELEMETRY_REPORT is pushed through the controller's JSON channel and the
// aggregate is pulled back out with TELEMETRY_QUERY. Default output is a
// human-readable summary; --json dumps the raw TELEMETRY_QUERY response (CI
// pipes it through a JSON parser as a schema smoke check).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "common/bytes.hpp"

#include "json/json.hpp"
#include "net/packet.hpp"
#include "service/controller.hpp"
#include "service/instance.hpp"
#include "service/messages.hpp"
#include "workload/adversarial_gen.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

namespace {

struct Args {
  std::map<std::string, std::string> options;

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }

  bool has_flag(const std::string& key) const {
    return options.count(key) > 0;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + token);
    }
    const std::string key = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

bool response_ok(const json::Value& response) {
  return response.is_object() && response.at("ok").as_bool();
}

void require_ok(const json::Value& response, const char* what) {
  if (!response_ok(response)) {
    throw std::runtime_error(std::string("control message failed: ") + what);
  }
}

std::uint64_t count_of(const json::Value& counters, const char* key) {
  return static_cast<std::uint64_t>(
      counters.get_or(key, json::Value(std::uint64_t{0})).as_number());
}

void print_pretty(const json::Value& response,
                  const service::DpiInstance& instance) {
  for (const auto& [name, report] : response.at("instances").as_object()) {
    const json::Value& counters = report.at("counters");
    std::printf("instance %s (engine v%llu)\n", name.c_str(),
                static_cast<unsigned long long>(
                    report.at("engine_version").as_int()));
    std::printf("  packets:         %llu\n",
                static_cast<unsigned long long>(count_of(counters, "packets")));
    std::printf("  bytes:           %llu\n",
                static_cast<unsigned long long>(count_of(counters, "bytes")));
    std::printf("  raw hits:        %llu\n",
                static_cast<unsigned long long>(count_of(counters, "raw_hits")));
    std::printf("  match packets:   %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "match_packets")));
    std::printf("  active flows:    %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "active_flows")));
    std::printf("  flow evictions:  %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "flow_evictions")));
    std::printf("  ambiguous ovlps: %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "ambiguous_overlaps")));
    std::printf("  conflict bytes:  %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "conflicting_overlap_bytes")));
    std::printf("  stream evicts:   %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "stream_evictions")));
    std::printf("  busy seconds:    %.6f\n",
                counters.get_or("busy_seconds", json::Value(0.0)).as_number());
    const json::Value& lat = report.get_or("latency_ns", json::Value());
    if (lat.is_object()) {
      std::printf("  scan latency:    p50 %.0f ns, p90 %.0f ns, p99 %.0f ns\n",
                  lat.get_or("p50", json::Value(0.0)).as_number(),
                  lat.get_or("p90", json::Value(0.0)).as_number(),
                  lat.get_or("p99", json::Value(0.0)).as_number());
    }
  }
  // Reassembly/defragmentation counter blocks come straight from the
  // instance's stats_json (per-shard obs counters roll up into the same
  // totals).
  const json::Value stats = instance.stats_json();
  const json::Value& reassembly = stats.at("reassembly");
  std::printf("reassembly (policy %s)\n",
              reassembly.at("policy").as_string().c_str());
  std::printf("  dropped segs:    %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "dropped_segments")));
  std::printf("  duplicate bytes: %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "duplicate_bytes")));
  std::printf("  ambiguous ovlps: %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "ambiguous_overlaps")));
  std::printf("  conflict bytes:  %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "conflicting_overlap_bytes")));
  std::printf("  stream evicts:   %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "stream_evictions")));
  std::printf("  streams closed:  %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "streams_closed")));
  std::printf("  ignored fins:    %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "ignored_fins")));
  std::printf("  ignored rsts:    %llu\n",
              static_cast<unsigned long long>(
                  count_of(reassembly, "ignored_rsts")));
  const json::Value& defrag = stats.at("defrag");
  std::printf("defrag\n");
  std::printf("  fragments:       %llu\n",
              static_cast<unsigned long long>(count_of(defrag, "fragments")));
  std::printf("  completed:       %llu\n",
              static_cast<unsigned long long>(
                  count_of(defrag, "datagrams_completed")));
  std::printf("  rejected tiny:   %llu\n",
              static_cast<unsigned long long>(
                  count_of(defrag, "rejected_tiny")));
  std::printf("  rejected bounds: %llu\n",
              static_cast<unsigned long long>(
                  count_of(defrag, "rejected_bounds")));
  std::printf("  ambiguous frags: %llu\n",
              static_cast<unsigned long long>(
                  count_of(defrag, "ambiguous_fragments")));
  // Batched-ingest backpressure (DESIGN.md §4h): bounded per-shard rings
  // turn a stalled shard into these counters instead of memory growth.
  const json::Value& ingest = stats.get_or("ingest", json::Value());
  if (ingest.is_object()) {
    std::printf("ingest (policy %s, ring capacity %llu)\n",
                ingest.get_or("overload_policy", json::Value("?"))
                    .as_string()
                    .c_str(),
                static_cast<unsigned long long>(
                    count_of(ingest, "queue_capacity")));
    std::printf("  blocked pushes:  %llu\n",
                static_cast<unsigned long long>(
                    count_of(ingest, "backpressure_blocked")));
    std::printf("  shed packets:    %llu\n",
                static_cast<unsigned long long>(
                    count_of(ingest, "backpressure_shed")));
    std::printf("  in-flight:       %llu batches\n",
                static_cast<unsigned long long>(
                    count_of(ingest, "batches_in_flight")));
  }

  // Control-plane admission telemetry: typed registration rejections and
  // the analyzer's latest combined-engine prediction.
  const json::Value& ctrl = response.get_or("controller", json::Value());
  if (ctrl.is_object()) {
    const json::Value& counters = ctrl.at("counters");
    std::printf("controller admission\n");
    std::printf("  accepted:        %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "admission.accepted")));
    std::printf("  analysis runs:   %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "analysis.runs")));
    const std::pair<const char*, const char*> kinds[] = {
        {"decode errors", "admission.rejected.decode_error"},
        {"duplicate rule", "admission.rejected.duplicate_rule"},
        {"oversize pat.", "admission.rejected.oversize_pattern"},
        {"unknown mbox", "admission.rejected.unknown_middlebox"},
        {"unknown rule", "admission.rejected.unknown_rule"},
        {"invalid regex", "admission.rejected.invalid_regex"},
        {"over budget", "admission.rejected.over_budget"},
        {"other", "admission.rejected.other"},
    };
    std::uint64_t rejected = 0;
    for (const auto& [label, key] : kinds) rejected += count_of(counters, key);
    std::printf("  rejected:        %llu\n",
                static_cast<unsigned long long>(rejected));
    for (const auto& [label, key] : kinds) {
      const std::uint64_t n = count_of(counters, key);
      if (n != 0) {
        std::printf("    %-14s %llu\n", label,
                    static_cast<unsigned long long>(n));
      }
    }
    const json::Value& gauges = ctrl.at("gauges");
    std::printf("  predicted:       %llu states, %llu bytes\n",
                static_cast<unsigned long long>(
                    count_of(gauges, "analysis.predicted_states")),
                static_cast<unsigned long long>(
                    count_of(gauges, "analysis.predicted_memory_bytes")));
  }

  const auto& trace = instance.trace();
  if (trace.enabled()) {
    const auto events = trace.snapshot();
    std::printf("trace: %llu events recorded, %llu dropped, showing last %zu\n",
                static_cast<unsigned long long>(trace.total_recorded()),
                static_cast<unsigned long long>(trace.dropped()),
                events.size());
    for (const auto& ev : events) {
      std::printf("  #%llu %-14s flow=%016llx shard=%u chain=%u off=%llu "
                  "val=%llu\n",
                  static_cast<unsigned long long>(ev.seq),
                  obs::trace_event_name(ev.event),
                  static_cast<unsigned long long>(ev.flow), ev.shard, ev.chain,
                  static_cast<unsigned long long>(ev.offset),
                  static_cast<unsigned long long>(ev.value));
    }
  }
}

int run(const Args& args) {
  const auto packets =
      static_cast<std::size_t>(args.get_u64("packets", 2000));
  const auto workers = static_cast<std::size_t>(args.get_u64("workers", 2));
  const auto trace_cap = static_cast<std::size_t>(args.get_u64("trace", 0));

  service::DpiController controller;

  // A stateless IDS with exact signatures plus a regex, and a stateful DLP
  // middlebox whose regex can span packet boundaries — together they light
  // up every counter family the telemetry report carries.
  service::RegisterRequest ids;
  ids.profile.id = 1;
  ids.profile.name = "ids";
  require_ok(controller.handle_message(encode(ids)), "register ids");
  service::RegisterRequest dlp;
  dlp.profile.id = 2;
  dlp.profile.name = "dlp";
  dlp.profile.stateful = true;
  require_ok(controller.handle_message(encode(dlp)), "register dlp");

  service::AddPatternsRequest ids_patterns;
  ids_patterns.middlebox = 1;
  ids_patterns.exact = {{1, "attack"}, {2, "evil-payload"}};
  ids_patterns.regex = {{3, "User-Agent: [A-Za-z]+", false}};
  require_ok(controller.handle_message(encode(ids_patterns)), "ids patterns");
  service::AddPatternsRequest dlp_patterns;
  dlp_patterns.middlebox = 2;
  dlp_patterns.regex = {{1, "card=[0-9]+#", false}};
  require_ok(controller.handle_message(encode(dlp_patterns)), "dlp patterns");

  // One deliberately duplicate add exercises the typed rejection path so
  // the controller admission counters carry real activity in the report.
  service::AddPatternsRequest duplicate;
  duplicate.middlebox = 1;
  duplicate.exact = {{1, "attack"}};
  if (response_ok(controller.handle_message(encode(duplicate)))) {
    throw std::runtime_error("duplicate add unexpectedly admitted");
  }

  const dpi::ChainId chain = controller.register_policy_chain({1, 2});
  service::InstanceConfig config;
  config.num_workers = workers;
  config.metrics = true;
  config.trace_capacity = trace_cap;
  config.reassemble_tcp = true;
  config.defragment_ip = true;
  auto instance = controller.create_instance("dpi-0", config);
  controller.assign_chain(chain, "dpi-0");

  workload::TrafficConfig traffic;
  traffic.num_packets = packets;
  traffic.seed = args.get_u64("seed", 42);
  traffic.planted_match_rate = args.get_double("match-rate", 0.05);
  traffic.planted_patterns = {"attack", "evil-payload"};
  const workload::Trace trace = workload::generate_http_trace(traffic);
  for (const workload::TracePacket& p : trace) {
    (void)instance->scan(chain, p.tuple, p.payload);
  }

  // Evasion leg: one adversarial flow with conflicting TCP overlaps and one
  // with reversed IP fragments, through the full defrag+reassembly ingest,
  // so the ambiguity/defrag counters in the report reflect real activity.
  const Bytes evasion_stream =
      to_bytes("GET /?q=attack HTTP/1.1 evil-payload card=4111222233334444#xx");
  workload::EvasionSpec overlap_spec;
  overlap_spec.seed = traffic.seed;
  overlap_spec.segment_bytes = 8;
  overlap_spec.conflict = workload::ConflictMode::kDecoyLater;
  overlap_spec.conflict_rate = 0.5;
  workload::EvasionSpec frag_spec;
  frag_spec.seed = traffic.seed + 1;
  frag_spec.segment_bytes = 32;
  frag_spec.fragment_payload = 16;
  frag_spec.fragment_reverse = true;
  const net::FiveTuple overlap_flow{net::Ipv4Addr(10, 9, 0, 1),
                                    net::Ipv4Addr(10, 9, 0, 2), 40001, 80,
                                    net::IpProto::kTcp};
  const net::FiveTuple frag_flow{net::Ipv4Addr(10, 9, 0, 3),
                                 net::Ipv4Addr(10, 9, 0, 4), 40002, 80,
                                 net::IpProto::kTcp};
  for (const auto& [flow, spec] :
       {std::pair{overlap_flow, overlap_spec}, std::pair{frag_flow, frag_spec}}) {
    const workload::AdversarialTrace adversarial =
        workload::make_evasion_trace(flow, evasion_stream, spec);
    for (const net::Packet& packet : adversarial.packets) {
      net::Packet tagged = packet;
      tagged.push_tag(net::TagKind::kPolicyChain, chain);
      (void)instance->process(std::move(tagged));
    }
  }

  // Round-trip the report over the JSON channel exactly like a remote
  // instance would, then pull the aggregate back out.
  const service::TelemetryReport report =
      service::make_telemetry_report(*instance);
  require_ok(controller.handle_message(encode(report)), "telemetry_report");
  const json::Value response =
      controller.handle_message(encode(service::TelemetryQuery{}));
  require_ok(response, "telemetry_query");

  if (args.has_flag("json")) {
    std::printf("%s\n", json::dump(response).c_str());
  } else {
    print_pretty(response, *instance);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr, R"(usage: dpisvc_stats [options]

options:
  --json            dump the raw TELEMETRY_QUERY response
  --packets N       packets to generate and scan (default 2000)
  --workers N       instance shards / scan-pool workers (default 2)
  --trace N         ScanTrace ring capacity (default 0 = disabled)
  --match-rate R    planted-match rate of the generated trace (default 0.05)
  --seed S          traffic generator seed (default 42)
)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 1;
  }
}
