// dpisvc_stats — end-to-end smoke driver for the telemetry channel.
//
//   dpisvc_stats [--json] [--packets N] [--workers N] [--trace N]
//                [--match-rate R] [--seed S]
//
// Builds an in-process DPI service (controller + one instance), registers a
// stateless and a stateful middlebox with exact and regex patterns, scans a
// generated HTTP-like trace, then exercises the full telemetry loop the way
// a remote operator would: the instance's TELEMETRY_REPORT is pushed through
// the controller's JSON channel and the aggregate is pulled back out with
// TELEMETRY_QUERY. Default output is a human-readable summary; --json dumps
// the raw TELEMETRY_QUERY response (CI pipes it through a JSON parser as a
// schema smoke check).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "json/json.hpp"
#include "service/controller.hpp"
#include "service/instance.hpp"
#include "service/messages.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

namespace {

struct Args {
  std::map<std::string, std::string> options;

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }

  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }

  bool has_flag(const std::string& key) const {
    return options.count(key) > 0;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected argument: " + token);
    }
    const std::string key = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // boolean flag
    }
  }
  return args;
}

bool response_ok(const json::Value& response) {
  return response.is_object() && response.at("ok").as_bool();
}

void require_ok(const json::Value& response, const char* what) {
  if (!response_ok(response)) {
    throw std::runtime_error(std::string("control message failed: ") + what);
  }
}

std::uint64_t count_of(const json::Value& counters, const char* key) {
  return static_cast<std::uint64_t>(
      counters.get_or(key, json::Value(std::uint64_t{0})).as_number());
}

void print_pretty(const json::Value& response,
                  const service::DpiInstance& instance) {
  for (const auto& [name, report] : response.at("instances").as_object()) {
    const json::Value& counters = report.at("counters");
    std::printf("instance %s (engine v%llu)\n", name.c_str(),
                static_cast<unsigned long long>(
                    report.at("engine_version").as_int()));
    std::printf("  packets:         %llu\n",
                static_cast<unsigned long long>(count_of(counters, "packets")));
    std::printf("  bytes:           %llu\n",
                static_cast<unsigned long long>(count_of(counters, "bytes")));
    std::printf("  raw hits:        %llu\n",
                static_cast<unsigned long long>(count_of(counters, "raw_hits")));
    std::printf("  match packets:   %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "match_packets")));
    std::printf("  active flows:    %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "active_flows")));
    std::printf("  flow evictions:  %llu\n",
                static_cast<unsigned long long>(
                    count_of(counters, "flow_evictions")));
    std::printf("  busy seconds:    %.6f\n",
                counters.get_or("busy_seconds", json::Value(0.0)).as_number());
    const json::Value& lat = report.get_or("latency_ns", json::Value());
    if (lat.is_object()) {
      std::printf("  scan latency:    p50 %.0f ns, p90 %.0f ns, p99 %.0f ns\n",
                  lat.get_or("p50", json::Value(0.0)).as_number(),
                  lat.get_or("p90", json::Value(0.0)).as_number(),
                  lat.get_or("p99", json::Value(0.0)).as_number());
    }
  }
  const auto& trace = instance.trace();
  if (trace.enabled()) {
    const auto events = trace.snapshot();
    std::printf("trace: %llu events recorded, %llu dropped, showing last %zu\n",
                static_cast<unsigned long long>(trace.total_recorded()),
                static_cast<unsigned long long>(trace.dropped()),
                events.size());
    for (const auto& ev : events) {
      std::printf("  #%llu %-14s flow=%016llx shard=%u chain=%u off=%llu "
                  "val=%llu\n",
                  static_cast<unsigned long long>(ev.seq),
                  obs::trace_event_name(ev.event),
                  static_cast<unsigned long long>(ev.flow), ev.shard, ev.chain,
                  static_cast<unsigned long long>(ev.offset),
                  static_cast<unsigned long long>(ev.value));
    }
  }
}

int run(const Args& args) {
  const auto packets =
      static_cast<std::size_t>(args.get_u64("packets", 2000));
  const auto workers = static_cast<std::size_t>(args.get_u64("workers", 2));
  const auto trace_cap = static_cast<std::size_t>(args.get_u64("trace", 0));

  service::DpiController controller;

  // A stateless IDS with exact signatures plus a regex, and a stateful DLP
  // middlebox whose regex can span packet boundaries — together they light
  // up every counter family the telemetry report carries.
  service::RegisterRequest ids;
  ids.profile.id = 1;
  ids.profile.name = "ids";
  require_ok(controller.handle_message(encode(ids)), "register ids");
  service::RegisterRequest dlp;
  dlp.profile.id = 2;
  dlp.profile.name = "dlp";
  dlp.profile.stateful = true;
  require_ok(controller.handle_message(encode(dlp)), "register dlp");

  service::AddPatternsRequest ids_patterns;
  ids_patterns.middlebox = 1;
  ids_patterns.exact = {{1, "attack"}, {2, "evil-payload"}};
  ids_patterns.regex = {{3, "User-Agent: [A-Za-z]+", false}};
  require_ok(controller.handle_message(encode(ids_patterns)), "ids patterns");
  service::AddPatternsRequest dlp_patterns;
  dlp_patterns.middlebox = 2;
  dlp_patterns.regex = {{1, "card=[0-9]+#", false}};
  require_ok(controller.handle_message(encode(dlp_patterns)), "dlp patterns");

  const dpi::ChainId chain = controller.register_policy_chain({1, 2});
  service::InstanceConfig config;
  config.num_workers = workers;
  config.metrics = true;
  config.trace_capacity = trace_cap;
  auto instance = controller.create_instance("dpi-0", config);
  controller.assign_chain(chain, "dpi-0");

  workload::TrafficConfig traffic;
  traffic.num_packets = packets;
  traffic.seed = args.get_u64("seed", 42);
  traffic.planted_match_rate = args.get_double("match-rate", 0.05);
  traffic.planted_patterns = {"attack", "evil-payload"};
  const workload::Trace trace = workload::generate_http_trace(traffic);
  for (const workload::TracePacket& p : trace) {
    (void)instance->scan(chain, p.tuple, p.payload);
  }

  // Round-trip the report over the JSON channel exactly like a remote
  // instance would, then pull the aggregate back out.
  const service::TelemetryReport report =
      service::make_telemetry_report(*instance);
  require_ok(controller.handle_message(encode(report)), "telemetry_report");
  const json::Value response =
      controller.handle_message(encode(service::TelemetryQuery{}));
  require_ok(response, "telemetry_query");

  if (args.has_flag("json")) {
    std::printf("%s\n", json::dump(response).c_str());
  } else {
    print_pretty(response, *instance);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr, R"(usage: dpisvc_stats [options]

options:
  --json            dump the raw TELEMETRY_QUERY response
  --packets N       packets to generate and scan (default 2000)
  --workers N       instance shards / scan-pool workers (default 2)
  --trace N         ScanTrace ring capacity (default 0 = disabled)
  --match-rate R    planted-match rate of the generated trace (default 0.05)
  --seed S          traffic generator seed (default 42)
)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 1;
  }
}
