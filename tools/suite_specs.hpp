// Shared suite/spec construction for the offline pattern-set CLIs
// (dpisvc_check, dpisvc_lint). Both tools judge the same spec shape — three
// middleboxes with round-robin pattern assignment, §4.1 shared-pattern
// re-registrations, and two policy chains — so the verifier's invariants
// and the analyzer's predictions are exercised against identical inputs.
#pragma once

#include <string>
#include <vector>

#include "dpi/engine.hpp"
#include "dpi/pattern_db.hpp"
#include "workload/pattern_gen.hpp"

namespace dpisvc::tools {

/// One named pattern-set suite (the unit both CLIs iterate over).
struct Suite {
  std::string name;
  std::vector<std::string> patterns;
  std::vector<std::string> regexes;
};

/// Distributes patterns over three middleboxes round-robin, registers the
/// first few patterns a second time under another middlebox (the §4.1
/// shared-pattern path), and wires two chains.
inline dpi::EngineSpec make_spec(const std::vector<std::string>& patterns,
                                 const std::vector<std::string>& regexes) {
  dpi::EngineSpec spec;
  for (dpi::MiddleboxId id = 1; id <= 3; ++id) {
    dpi::MiddleboxProfile p;
    p.id = id;
    p.name = "check-" + std::to_string(id);
    p.stateful = id == 2;
    spec.middleboxes.push_back(p);
  }
  dpi::PatternId rule = 0;
  for (const std::string& bytes : patterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        bytes, static_cast<dpi::MiddleboxId>(1 + rule % 3), rule});
    ++rule;
  }
  // Shared patterns: middlebox 3 re-registers the first eight strings.
  for (std::size_t i = 0; i < patterns.size() && i < 8; ++i) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        patterns[i], 3, static_cast<dpi::PatternId>(rule++)});
  }
  dpi::PatternId regex_rule = 10000;
  for (const std::string& expr : regexes) {
    spec.regex_patterns.push_back(
        dpi::RegexPatternSpec{expr, 1, regex_rule++, false});
  }
  spec.chains[1] = {1, 2, 3};
  spec.chains[2] = {2};
  return spec;
}

/// Mirrors make_spec through the controller's ref-counted PatternDb so its
/// ref-count bookkeeping is checked against the same registrations.
inline void populate_db(dpi::PatternDb& db, const dpi::EngineSpec& spec) {
  for (const auto& profile : spec.middleboxes) {
    db.register_middlebox(profile);
  }
  for (const auto& p : spec.exact_patterns) {
    db.add_exact(p.middlebox, p.pattern_id, p.bytes);
  }
  for (const auto& p : spec.regex_patterns) {
    db.add_regex(p.middlebox, p.pattern_id, p.expression, p.case_insensitive);
  }
  for (const auto& [chain, members] : spec.chains) {
    db.set_chain(chain, members);
  }
}

/// The built-in seed workloads: a handcrafted suffix-heavy set exercising
/// failure-link propagation ("he" in "she", "hers"), shared prefixes and
/// binary bytes, plus generated snort-like and clamav-like sets.
inline std::vector<Suite> builtin_suites() {
  std::vector<Suite> suites;
  suites.push_back(Suite{
      "builtin:classic",
      {
          "he",           "she",           "his",
          "hers",         "ushers",        std::string("\x00\x01\x02mark", 7),
          "GET /index",   "index.html",    "html></html>",
      },
      {"User-Agent: [a-z]+bot", "cmd\\.exe.{0,16}/c"}});
  suites.push_back(
      Suite{"builtin:snort-like",
            workload::generate_patterns(workload::snort_like(600, 17)),
            {}});
  suites.push_back(
      Suite{"builtin:clamav-like",
            workload::generate_patterns(workload::clamav_like(400, 23)),
            {}});
  return suites;
}

}  // namespace dpisvc::tools
